//! # bench — the experiment harness
//!
//! One module (and one binary) per table/figure of the paper's evaluation
//! section. Each `run(...)` returns the data and prints the same rows or
//! series the paper reports, so `cargo run --release -p bench --bin
//! fig7_strong_scaling` regenerates Figure 7, and so on.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1_stream` | Table I (STREAM, measured on this host + paper profiles) |
//! | `fig5_netpipe` | Figure 5 (NetPIPE bandwidth vs message size) |
//! | `fig6_tilesize` | Figure 6 (single-node GFLOP/s vs tile size; model at paper scale + real threaded run at host scale) |
//! | `fig7_strong_scaling` | Figure 7 (PETSc vs base vs CA speedup) |
//! | `fig8_kernel_ratio` | Figure 8 (kernel-adjustment-ratio sweep) |
//! | `fig9_stepsize` | Figure 9 (CA step-size sweep) |
//! | `fig10_trace` | Figure 10 (per-node trace, occupancy, kernel medians) |
//!
//! `stencil-doctor` is the diagnosis-and-regression harness rather than a
//! paper figure: it runs base and CA on a deterministic simulated
//! configuration, attributes every idle gap (comm-wait / dependency-wait
//! / starvation via the `insight` crate), compares the achieved makespan
//! to the static lower bound, and writes or checks the committed
//! `BENCH_stencil.json` regression baseline.
//!
//! Beyond the paper's own artifacts, `ablations` sweeps the design knobs
//! (scheduler policy, comm engines, rendezvous threshold, per-message
//! cost) and runs the paper's concluding exascale projection, and
//! `stencil-tournament` runs every scheme × every `runtime::Scheduler`
//! portfolio policy on the reference configuration, judged by makespan
//! vs the static bound, critical-path daylight, and occupancy (its
//! `--check` mode is CI's deadlock-freedom and default-policy-identity
//! gate).
//!
//! Set `REPRO_FAST=1` to shrink iteration counts for smoke runs; the
//! defaults match the paper's parameters.

#![deny(missing_docs)]

pub mod exp_ablations;
pub mod exp_doctor;
pub mod exp_fig10;
pub mod exp_fig5;
pub mod exp_fig6;
pub mod exp_fig7;
pub mod exp_fig8;
pub mod exp_fig9;
pub mod exp_krylov;
pub mod exp_overhead;
pub mod exp_pa_variants;
pub mod exp_roofline;
pub mod exp_table1;
pub mod exp_top;
pub mod exp_tournament;
pub mod exp_whatif;
pub mod lint;
pub mod report;
pub mod statics;

/// The paper's per-machine experiment parameters (problem size and tile
/// size used in Figures 7–10): NaCL ran 23k at tile 288, Stampede2 55k at
/// tile 864. We use the nearest tile-divisible sizes (23 040 = 80 × 288,
/// 55 296 = 64 × 864).
pub fn paper_workload(profile: &machine::MachineProfile) -> (usize, usize) {
    match profile.name.as_str() {
        "Stampede2" => (55_296, 864),
        _ => (23_040, 288),
    }
}

/// Iteration count: the paper's 100, or 10 under `REPRO_FAST=1`.
pub fn iterations() -> u32 {
    if fast_mode() {
        10
    } else {
        100
    }
}

/// True when `REPRO_FAST=1` is set.
pub fn fast_mode() -> bool {
    std::env::var("REPRO_FAST").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_divide_by_tiles() {
        for p in [
            machine::MachineProfile::nacl(),
            machine::MachineProfile::stampede2(),
        ] {
            let (n, tile) = paper_workload(&p);
            assert_eq!(n % tile, 0);
            // and distribute over all of the paper's node grids
            let tiles = n / tile;
            for nodes in [4u32, 16, 64] {
                let side = (nodes as f64).sqrt() as usize;
                assert_eq!(tiles % side, 0, "{}: {tiles} tiles over {side}", p.name);
            }
        }
    }
}
