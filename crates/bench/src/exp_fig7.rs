//! Figure 7: strong-scaling speedup over the single-node base-PaRSEC run,
//! for PETSc, base-PaRSEC and CA-PaRSEC on 1/4/16/64 nodes.
//!
//! Paper parameters: NaCL problem 23k tile 288, Stampede2 problem 55k tile
//! 864, 100 iterations, CA step size 15.

use crate::{iterations, paper_workload};
use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::RunConfig;
use serde::Serialize;
use spmv::PetscModel;

/// One (node count) row of the figure.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig7Row {
    /// Node count.
    pub nodes: u32,
    /// PETSc speedup over 1-node base-PaRSEC.
    pub petsc: f64,
    /// Base-PaRSEC speedup.
    pub base: f64,
    /// CA-PaRSEC speedup.
    pub ca: f64,
}

/// One machine's strong-scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Series {
    /// System name.
    pub system: String,
    /// Problem size.
    pub n: usize,
    /// Tile size.
    pub tile: usize,
    /// Single-node base time used as the speedup denominator, seconds.
    pub baseline_seconds: f64,
    /// Rows for each node count.
    pub rows: Vec<Fig7Row>,
}

fn config(profile: &MachineProfile, nodes: u32) -> StencilConfig {
    let (n, tile) = paper_workload(profile);
    StencilConfig::new(
        Problem::laplace(n),
        tile,
        iterations(),
        ProcessGrid::square(nodes),
    )
    .with_steps(15)
    .with_profile(profile.clone())
}

/// Run the figure for one machine.
pub fn run(profile: &MachineProfile) -> Fig7Series {
    let (n, tile) = paper_workload(profile);
    let base1 = {
        let cfg = config(profile, 1);
        let r = runtime::run(
            &build_base(&cfg, false).program,
            &RunConfig::simulated(profile.clone(), 1),
        );
        crate::report::record(&format!("{}/1n/base", profile.name), &r);
        r.makespan
    };
    let petsc_model = PetscModel::new(profile);
    let rows = [4u32, 16, 64]
        .iter()
        .map(|&nodes| {
            let cfg = config(profile, nodes);
            let sim = RunConfig::simulated(profile.clone(), nodes);
            let base_run = runtime::run(&build_base(&cfg, false).program, &sim);
            let ca_run = runtime::run(&build_ca(&cfg, false).program, &sim);
            crate::report::record(&format!("{}/{}n/base", profile.name, nodes), &base_run);
            crate::report::record(&format!("{}/{}n/ca", profile.name, nodes), &ca_run);
            let base = base_run.makespan;
            let ca = ca_run.makespan;
            let petsc = petsc_model.predict(&cfg, nodes).total_time;
            Fig7Row {
                nodes,
                petsc: base1 / petsc,
                base: base1 / base,
                ca: base1 / ca,
            }
        })
        .collect();
    Fig7Series {
        system: profile.name.clone(),
        n,
        tile,
        baseline_seconds: base1,
        rows,
    }
}

/// Run both machines.
pub fn run_all() -> Vec<Fig7Series> {
    [MachineProfile::nacl(), MachineProfile::stampede2()]
        .iter()
        .map(run)
        .collect()
}

/// Print the figure.
pub fn print(series: &[Fig7Series]) {
    println!("FIGURE 7: strong-scaling speedup over single-node base-PaRSEC");
    for s in series {
        println!(
            "-- {} (problem {}k, tile {}, 1-node base = {:.2}s)",
            s.system,
            s.n / 1000,
            s.tile,
            s.baseline_seconds
        );
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>14}",
            "nodes", "PETSc", "base", "CA", "base/PETSc"
        );
        for r in &s.rows {
            println!(
                "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>13.2}x",
                r.nodes,
                r.petsc,
                r.base,
                r.ca,
                r.base / r.petsc
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nacl_shape_matches_paper() {
        // Small iteration count for speed; speedups are time ratios so the
        // iteration count cancels to first order.
        std::env::set_var("REPRO_FAST", "1");
        let s = run(&MachineProfile::nacl());
        // all versions scale (speedup grows with node count)
        for w in s.rows.windows(2) {
            assert!(w[1].base > w[0].base);
            assert!(w[1].petsc > w[0].petsc);
        }
        for r in &s.rows {
            // PaRSEC ≈ 2× PETSc (paper: "twice the performance")
            let ratio = r.base / r.petsc;
            assert!((1.5..=3.0).contains(&ratio), "nodes {}: {ratio}", r.nodes);
            // base ≈ CA at full kernel (paper: "almost indistinguishable")
            let gap = (r.base - r.ca).abs() / r.base;
            assert!(
                gap < 0.12,
                "nodes {}: base {} vs ca {}",
                r.nodes,
                r.base,
                r.ca
            );
        }
    }
}
