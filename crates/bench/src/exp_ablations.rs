//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * **scheduler policy** — FIFO vs LIFO ready queues;
//! * **communication engines** — one dedicated comm thread (the paper's
//!   configuration) vs several;
//! * **rendezvous threshold** — where the eager→rendezvous protocol switch
//!   sits relative to the CA scheme's message sizes;
//! * **per-message runtime cost** — the calibrated knob the CA advantage
//!   rests on, swept to show the sensitivity;
//! * **exascale projection** — the paper's concluding prediction: memory
//!   bandwidth keeps improving (~50 % per generation) while network
//!   latency/message costs stagnate, so the same workload becomes
//!   network-bound and "the communication-avoiding approach shows a
//!   distinct advantage". We sweep a memory-bandwidth multiplier at an
//!   unmodified kernel (ratio 1) and watch the CA gain appear.

use crate::paper_workload;
use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig, SchedulerPolicy};
use serde::Serialize;

/// Result of one base-vs-CA pair under some configuration.
#[derive(Debug, Clone, Serialize)]
pub struct PairResult {
    /// Configuration label.
    pub label: String,
    /// Base makespan, seconds.
    pub base: f64,
    /// CA makespan, seconds.
    pub ca: f64,
}

impl PairResult {
    /// CA improvement over base, percent.
    pub fn ca_gain_percent(&self) -> f64 {
        100.0 * (self.base / self.ca - 1.0)
    }
}

fn paper_cfg(profile: &MachineProfile, nodes: u32, ratio: f64, iters: u32) -> StencilConfig {
    let (n, tile) = paper_workload(profile);
    StencilConfig::new(Problem::laplace(n), tile, iters, ProcessGrid::square(nodes))
        .with_steps(15)
        .with_ratio(ratio)
        .with_profile(profile.clone())
}

fn pair(cfg: &StencilConfig, sim: &RunConfig, label: String) -> PairResult {
    let base = run(&build_base(cfg, false).program, sim);
    let ca = run(&build_ca(cfg, false).program, sim);
    crate::report::record(&format!("{label}/base"), &base);
    crate::report::record(&format!("{label}/ca"), &ca);
    PairResult {
        label,
        base: base.makespan,
        ca: ca.makespan,
    }
}

/// Scheduler-policy ablation at the communication-sensitive ratio 0.4.
pub fn scheduler_ablation(iters: u32) -> Vec<PairResult> {
    let profile = MachineProfile::nacl();
    let cfg = paper_cfg(&profile, 16, 0.4, iters);
    [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Lifo,
        SchedulerPolicy::Priority,
    ]
    .into_iter()
    .map(|policy| {
        let sim = RunConfig::simulated(profile.clone(), 16).with_policy(policy);
        pair(&cfg, &sim, format!("{policy:?}"))
    })
    .collect()
}

/// Communication-engine-count ablation: with more engines the per-message
/// processing parallelizes and base recovers some of the CA gap.
pub fn comm_engine_ablation(iters: u32) -> Vec<PairResult> {
    let profile = MachineProfile::nacl();
    let cfg = paper_cfg(&profile, 16, 0.4, iters);
    [1usize, 2, 4]
        .into_iter()
        .map(|engines| {
            let sim = RunConfig::simulated(profile.clone(), 16).with_comm_engines(engines);
            pair(&cfg, &sim, format!("{engines} comm engine(s)"))
        })
        .collect()
}

/// Rendezvous-threshold ablation: CA's 34 KB strips sit just below the
/// default 64 KB switch; forcing them through rendezvous costs two extra
/// latencies per message.
pub fn rendezvous_ablation(iters: u32) -> Vec<PairResult> {
    [8 * 1024usize, 64 * 1024, 1024 * 1024]
        .into_iter()
        .map(|threshold| {
            let mut profile = MachineProfile::nacl();
            profile.rendezvous_threshold = threshold;
            let cfg = paper_cfg(&profile, 16, 0.4, iters);
            let sim = RunConfig::simulated(profile, 16);
            pair(&cfg, &sim, format!("rendezvous @ {} KB", threshold / 1024))
        })
        .collect()
}

/// Per-message runtime-cost sensitivity: the calibrated 40 µs halved and
/// doubled.
pub fn msg_cost_ablation(iters: u32) -> Vec<PairResult> {
    [20e-6f64, 40e-6, 80e-6]
        .into_iter()
        .map(|cost| {
            let mut profile = MachineProfile::nacl();
            profile.runtime_msg_cost = cost;
            let cfg = paper_cfg(&profile, 16, 0.4, iters);
            let sim = RunConfig::simulated(profile, 16);
            pair(&cfg, &sim, format!("msg cost {:.0} us", cost * 1e6))
        })
        .collect()
}

/// The exascale projection: multiply memory bandwidth (kernel gets faster,
/// network does not) and watch the CA advantage appear at ratio 1.
pub fn exascale_projection(iters: u32) -> Vec<PairResult> {
    [1.0f64, 2.0, 4.0, 8.0, 16.0]
        .into_iter()
        .map(|factor| {
            let mut profile = MachineProfile::nacl();
            profile.mem_bw_node *= factor;
            profile.mem_bw_core *= factor;
            let cfg = paper_cfg(&profile, 16, 1.0, iters);
            let sim = RunConfig::simulated(profile, 16);
            pair(&cfg, &sim, format!("memory x{factor:.1}"))
        })
        .collect()
}

/// Print a set of pair results.
pub fn print(title: &str, results: &[PairResult]) {
    println!("ABLATION: {title}");
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "config", "base (s)", "CA (s)", "CA gain"
    );
    for r in results {
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>9.1}%",
            r.label,
            r.base,
            r.ca,
            r.ca_gain_percent()
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_comm_engines_help_base_more_than_ca() {
        let results = comm_engine_ablation(10);
        // base is comm-bound at ratio 0.4 on 16 nodes; extra engines
        // shrink its makespan
        assert!(
            results[2].base < results[0].base * 0.85,
            "4 engines {} vs 1 engine {}",
            results[2].base,
            results[0].base
        );
        // and the CA gain shrinks as engines are added
        assert!(results[2].ca_gain_percent() < results[0].ca_gain_percent());
    }

    #[test]
    fn msg_cost_drives_the_ca_gain() {
        let results = msg_cost_ablation(10);
        assert!(
            results[0].ca_gain_percent() < results[1].ca_gain_percent(),
            "{results:?}"
        );
        assert!(
            results[1].ca_gain_percent() < results[2].ca_gain_percent(),
            "{results:?}"
        );
    }

    #[test]
    fn exascale_trend_favors_ca() {
        let results = exascale_projection(10);
        // at current bandwidth (x1) base and CA are close;
        let first = results.first().unwrap();
        assert!(first.ca_gain_percent().abs() < 10.0, "{first:?}");
        // with 8x memory the workload is network-bound and CA wins
        // clearly (the crossover sits between 4x and 8x on NaCL: the
        // calibrated comm ceiling is ~6.6 ms/iteration against a 27 ms
        // compute iteration today)
        let fast = &results[3];
        assert!(fast.ca_gain_percent() > 15.0, "{fast:?}");
        let faster = &results[4];
        assert!(faster.ca_gain_percent() > 25.0, "{faster:?}");
        // gain grows monotonically with the bandwidth factor
        for w in results.windows(2) {
            assert!(
                w[1].ca_gain_percent() >= w[0].ca_gain_percent() - 1.0,
                "{w:?}"
            );
        }
    }

    #[test]
    fn both_policies_and_thresholds_complete() {
        for r in scheduler_ablation(5) {
            assert!(r.base > 0.0 && r.ca > 0.0, "{r:?}");
        }
        for r in rendezvous_ablation(5) {
            assert!(r.base > 0.0 && r.ca > 0.0, "{r:?}");
        }
    }
}
