//! Shared implementation of the `stencil-lint` binary: build every
//! scheme's program for one configuration, run the static analyzer
//! (optionally including the region-dataflow pass), and dedup the
//! resulting diagnostics for terminal display.
//!
//! The dedup collapses the per-instance diagnostics the analyzer emits —
//! one per unfolded task — into one line per `(scheme, task kind, check)`
//! with an instance count and a representative witness, so a shrunken
//! halo in a 20-iteration run reads as one finding, not two hundred.

use analyze::{analyze_program, Analysis, AnalyzeConfig, DataflowMode, Diagnostic};
use ca_stencil::{build_base, build_base_dtd, build_ca, build_ca_shrunk, build_pa2, StencilConfig};
use runtime::Program;
use std::collections::BTreeMap;

/// What the lint run should check beyond the structural passes.
#[derive(Debug, Clone, Copy)]
pub struct LintOptions {
    /// Run the region-dataflow pass (halo coverage + dead transfers).
    pub dataflow: bool,
    /// Use steady-state (periodic) verification instead of a full unfold
    /// sweep when the dataflow pass runs.
    pub steady_state: bool,
    /// Execution lanes per node for the critical-path bound.
    pub lanes: u32,
    /// Replace the CA scheme with the deliberately broken variant whose
    /// deep South strips are one row short ([`build_ca_shrunk`]) — the
    /// lint is then *expected* to fail, which CI inverts into a check
    /// that the coverage proof actually has teeth.
    pub mutate_ca: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            dataflow: false,
            steady_state: false,
            lanes: 1,
            mutate_ca: false,
        }
    }
}

/// One deduplicated diagnostic line.
#[derive(Debug, Clone)]
pub struct DedupedDiagnostic {
    /// The check that fired (`"uncovered-read"`, `"write-race"`, ...).
    pub check: &'static str,
    /// Trace kind of the offending tasks, when the check attributes one.
    pub kind: Option<u32>,
    /// How many task instances hit the same `(kind, check)` pair.
    pub count: usize,
    /// Full text of one representative instance.
    pub example: String,
}

/// The lint result for one scheme.
#[derive(Debug)]
pub struct SchemeLint {
    /// Scheme name (`base`/`ca`/`pa2`/`dtd`).
    pub name: &'static str,
    /// The full static analysis, including the dataflow report when the
    /// pass was enabled.
    pub analysis: Analysis,
    /// Diagnostics collapsed per `(task kind, check)`.
    pub deduped: Vec<DedupedDiagnostic>,
}

impl SchemeLint {
    /// True when no diagnostic fired.
    pub fn is_clean(&self) -> bool {
        self.analysis.is_clean()
    }
}

fn check_name(d: &Diagnostic) -> &'static str {
    match d {
        Diagnostic::Structural(_) => "structural",
        Diagnostic::Deadlock { .. } => "deadlock",
        Diagnostic::WriteRace { .. } => "write-race",
        Diagnostic::UncoveredRead { .. } => "uncovered-read",
    }
}

fn diag_kind(d: &Diagnostic) -> Option<u32> {
    match d {
        Diagnostic::UncoveredRead { kind, .. } => Some(*kind),
        _ => None,
    }
}

/// Collapse diagnostics to one entry per `(task kind, check)`, keeping
/// the first instance as the representative witness. Ordering is stable:
/// by check name, then kind.
pub fn dedup(diags: &[Diagnostic]) -> Vec<DedupedDiagnostic> {
    let mut groups: BTreeMap<(&'static str, Option<u32>), (usize, String)> = BTreeMap::new();
    for d in diags {
        let entry = groups
            .entry((check_name(d), diag_kind(d)))
            .or_insert_with(|| (0, d.to_string()));
        entry.0 += 1;
    }
    groups
        .into_iter()
        .map(|((check, kind), (count, example))| DedupedDiagnostic {
            check,
            kind,
            count,
            example,
        })
        .collect()
}

/// Build every scheme that fits the configuration. PA2 needs
/// `steps <= tile/2` (deferred bands must stay inside the tile); callers
/// get `(name, program)` pairs plus the list of skipped schemes.
pub fn build_schemes(
    cfg: &StencilConfig,
    opts: &LintOptions,
) -> (Vec<(&'static str, Program)>, Vec<String>) {
    let mut skipped = Vec::new();
    let mut schemes: Vec<(&'static str, Program)> = vec![("base", build_base(cfg, false).program)];
    if opts.mutate_ca {
        schemes.push(("ca*", build_ca_shrunk(cfg).program));
    } else {
        schemes.push(("ca", build_ca(cfg, false).program));
    }
    if cfg.steps <= cfg.tile / 2 {
        schemes.push(("pa2", build_pa2(cfg, false).program));
    } else {
        skipped.push(format!(
            "pa2 skipped: steps {} > tile/2 = {}",
            cfg.steps,
            cfg.tile / 2
        ));
    }
    schemes.push(("dtd", build_base_dtd(cfg)));
    (schemes, skipped)
}

/// Run the analyzer over every scheme and dedup the diagnostics.
pub fn lint_schemes(cfg: &StencilConfig, opts: &LintOptions) -> (Vec<SchemeLint>, Vec<String>) {
    let (schemes, skipped) = build_schemes(cfg, opts);
    let mut acfg = AnalyzeConfig::new().with_lanes(opts.lanes);
    if opts.dataflow {
        acfg = acfg.with_dataflow(if opts.steady_state {
            DataflowMode::SteadyState
        } else {
            DataflowMode::Full
        });
    }
    let lints = schemes
        .into_iter()
        .map(|(name, program)| {
            let analysis = analyze_program(&program, &acfg);
            let deduped = dedup(&analysis.diagnostics);
            SchemeLint {
                name,
                analysis,
                deduped,
            }
        })
        .collect();
    (lints, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::Rect;

    fn uncovered(task: &str, kind: u32) -> Diagnostic {
        Diagnostic::UncoveredRead {
            task: task.into(),
            kind,
            space: 0,
            cells: 32,
            witness: Rect::new(-1, 0, 1, 32),
        }
    }

    #[test]
    fn dedup_groups_by_kind_and_check() {
        let diags = vec![
            uncovered("ca(0,0,4,0)", 1),
            uncovered("ca(1,0,4,0)", 1),
            uncovered("ca(1,1,8,0)", 0),
            Diagnostic::WriteRace {
                first: "a".into(),
                second: "b".into(),
                space: 3,
            },
        ];
        let out = dedup(&diags);
        assert_eq!(out.len(), 3);
        let boundary = out
            .iter()
            .find(|d| d.kind == Some(1))
            .expect("boundary group");
        assert_eq!(boundary.count, 2);
        assert!(boundary.example.contains("ca(0,0,4,0)"));
        assert_eq!(
            out.iter().find(|d| d.check == "write-race").unwrap().count,
            1
        );
    }
}
