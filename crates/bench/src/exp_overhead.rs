//! `runtime_overhead`: per-task dispatch cost of the work-stealing
//! shared-memory executor, with a committed regression baseline.
//!
//! Three zero-body scenarios isolate the runtime substrate — every
//! nanosecond measured is queue handoff, activation bookkeeping, and
//! thread coordination, not kernel work:
//!
//! * **chain** — a serial dependency chain on one worker: the pure
//!   uncontended dispatch loop (local deque push → pop → batched
//!   activation of the single successor);
//! * **fan** — one root releasing a wide fan on four workers: the batch
//!   activation spills past the local-deque capacity into the shared
//!   injector, and every worker drains it concurrently;
//! * **steal_storm** — layers of one task per worker where each task
//!   depends on the whole previous layer: the last completer of a layer
//!   receives *all* successors in its own deque, so other workers can
//!   make progress only by stealing.
//!
//! The binary's `--baseline` writes `BENCH_runtime_overhead.json`;
//! `--check` re-measures and fails when any scenario's ns/task drifts
//! outside the [`TOLERANCE_FACTOR`]× band in either direction. The band
//! is deliberately wide (wall-clock on a shared CI box is noisy; the
//! committed scalars are an order-of-magnitude fence, not a benchmark),
//! and each scenario takes the *minimum* of [`REPEATS`] runs, the
//! standard low-noise estimator for a lower-bounded cost.

use obs::names;
use runtime::{run, DtdBuilder, Program, RunConfig};
use serde::{Number, Value};
use std::collections::BTreeMap;

/// Default committed-baseline location (workspace root, next to
/// `BENCH_stencil.json`).
pub const BASELINE_FILE: &str = "BENCH_runtime_overhead.json";

/// Allowed drift factor per scenario: the check fails when current
/// ns/task exceeds `baseline × factor` or falls below
/// `baseline ÷ factor`.
pub const TOLERANCE_FACTOR: f64 = 8.0;

/// Runs per scenario; the minimum wall-clock is kept.
pub const REPEATS: usize = 3;

fn chain_program(len: usize) -> Program {
    let mut b = DtdBuilder::new();
    let mut prev = b.insert(0, 0.0, &[]);
    for _ in 1..len {
        prev = b.insert(0, 0.0, &[prev]);
    }
    b.build()
}

fn fan_program(width: usize) -> Program {
    let mut b = DtdBuilder::new();
    let root = b.insert(0, 0.0, &[]);
    for _ in 0..width {
        let _ = b.insert(0, 0.0, &[root]);
    }
    b.build()
}

/// `layers` rounds of `width` tasks, each depending on the entire
/// previous layer: the all-to-all edge pattern funnels every layer's
/// release through one completing worker.
fn steal_storm_program(layers: usize, width: usize) -> Program {
    let mut b = DtdBuilder::new();
    let mut prev: Vec<_> = (0..width).map(|_| b.insert(0, 0.0, &[])).collect();
    for _ in 1..layers {
        prev = (0..width).map(|_| b.insert(0, 0.0, &prev)).collect();
    }
    b.build()
}

/// One scenario's measured per-task runtime cost.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Scenario name (`chain` / `fan` / `steal_storm`).
    pub name: String,
    /// Tasks the scenario executes per run.
    pub tasks: u64,
    /// Worker threads it runs with.
    pub threads: usize,
    /// Best-of-[`REPEATS`] wall-clock nanoseconds per task.
    pub ns_per_task: f64,
    /// Steals observed on the best run (diagnostic; not baselined —
    /// timing-dependent on a loaded box).
    pub steals: u64,
}

/// Measure every scenario on the shared-memory executor.
pub fn measure_all() -> Vec<Measurement> {
    let scenarios: [(&str, Program, usize); 3] = [
        ("chain", chain_program(10_000), 1),
        ("fan", fan_program(10_000), 4),
        ("steal_storm", steal_storm_program(256, 4), 4),
    ];
    scenarios
        .into_iter()
        .map(|(name, program, threads)| {
            let mut best: Option<(f64, u64)> = None;
            let tasks = program.total_tasks;
            for _ in 0..REPEATS {
                let report = run(&program, &RunConfig::shared_memory(threads));
                let steals = report.counter(names::STEALS);
                if best.is_none_or(|(b, _)| report.makespan < b) {
                    best = Some((report.makespan, steals));
                }
            }
            let (makespan, steals) = best.expect("REPEATS >= 1");
            Measurement {
                name: name.to_string(),
                tasks,
                threads,
                ns_per_task: makespan * 1e9 / tasks as f64,
                steals,
            }
        })
        .collect()
}

/// The committed scalars: scenario name → ns/task.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverheadBaseline {
    /// Identity of the measurement setup, compared verbatim.
    pub config: String,
    /// Scenario name → best-of-repeats nanoseconds per task.
    pub scenarios: BTreeMap<String, f64>,
}

/// The config-identity string recorded in (and required of) the file.
pub fn describe() -> String {
    format!("shared-memory work-stealing executor, best of {REPEATS} runs")
}

impl OverheadBaseline {
    /// Assemble a baseline from fresh measurements.
    pub fn from_measurements(ms: &[Measurement]) -> Self {
        OverheadBaseline {
            config: describe(),
            scenarios: ms.iter().map(|m| (m.name.clone(), m.ns_per_task)).collect(),
        }
    }

    /// Serialize to the committed pretty-printed JSON format.
    pub fn to_json(&self) -> String {
        let scenarios = self
            .scenarios
            .iter()
            .map(|(name, ns)| (name.clone(), Value::Num(Number::F(*ns))))
            .collect();
        let v = Value::Object(vec![
            ("config".into(), Value::Str(self.config.clone())),
            (
                "tolerance_factor".into(),
                Value::Num(Number::F(TOLERANCE_FACTOR)),
            ),
            ("ns_per_task".into(), Value::Object(scenarios)),
        ]);
        let mut text = serde_json::to_string_pretty(&v).expect("baseline serialization");
        text.push('\n');
        text
    }

    /// Parse the committed JSON format back.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("baseline JSON: {e}"))?;
        let config = v
            .field("config")
            .as_str()
            .ok_or("baseline missing config string")?
            .to_string();
        let Value::Object(pairs) = v.field("ns_per_task") else {
            return Err("baseline missing ns_per_task object".into());
        };
        let mut scenarios = BTreeMap::new();
        for (name, nv) in pairs {
            let ns = nv
                .as_f64()
                .ok_or_else(|| format!("scenario {name}: not a number"))?;
            scenarios.insert(name.clone(), ns);
        }
        Ok(OverheadBaseline { config, scenarios })
    }

    /// Diff `current` against this committed baseline with the
    /// `factor`× band. Returns one line per violation; empty passes.
    pub fn compare(&self, current: &OverheadBaseline, factor: f64) -> Vec<String> {
        let mut bad = Vec::new();
        if self.config != current.config {
            bad.push(format!(
                "config mismatch: baseline \"{}\" vs current \"{}\" (re-baseline after setup changes)",
                self.config, current.config
            ));
            return bad;
        }
        for name in self.scenarios.keys() {
            if !current.scenarios.contains_key(name) {
                bad.push(format!("scenario {name} in baseline but not measured"));
            }
        }
        for name in current.scenarios.keys() {
            if !self.scenarios.contains_key(name) {
                bad.push(format!(
                    "scenario {name} measured but absent from baseline (re-baseline)"
                ));
            }
        }
        for (name, &base) in &self.scenarios {
            let Some(&cur) = current.scenarios.get(name) else {
                continue;
            };
            if cur > base * factor {
                bad.push(format!(
                    "{name}: {cur:.0} ns/task regressed past {factor}x the baseline {base:.0}"
                ));
            } else if cur < base / factor {
                bad.push(format!(
                    "{name}: {cur:.0} ns/task improved past {factor}x under the baseline {base:.0} \
                     — re-baseline so the fence stays meaningful"
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OverheadBaseline {
        OverheadBaseline {
            config: describe(),
            scenarios: [
                ("chain".to_string(), 2_000.0),
                ("fan".to_string(), 3_000.0),
                ("steal_storm".to_string(), 12_000.0),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let b = sample();
        let text = b.to_json();
        let parsed = OverheadBaseline::from_json(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn identical_measurements_pass() {
        assert!(sample().compare(&sample(), TOLERANCE_FACTOR).is_empty());
    }

    #[test]
    fn drift_beyond_the_band_fails_both_directions() {
        let b = sample();
        let mut slow = sample();
        *slow.scenarios.get_mut("chain").unwrap() *= 10.0;
        let bad = b.compare(&slow, TOLERANCE_FACTOR);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("chain"), "{bad:?}");

        let mut fast = sample();
        *fast.scenarios.get_mut("fan").unwrap() /= 10.0;
        assert!(!b.compare(&fast, TOLERANCE_FACTOR).is_empty());
    }

    #[test]
    fn scenario_set_and_config_mismatches_fail() {
        let b = sample();
        let mut cur = sample();
        cur.scenarios.remove("steal_storm");
        assert!(!b.compare(&cur, TOLERANCE_FACTOR).is_empty());

        let mut extra = sample();
        extra.scenarios.insert("novel".into(), 1.0);
        assert!(!b.compare(&extra, TOLERANCE_FACTOR).is_empty());

        let mut other = sample();
        other.config = "different".into();
        assert!(!b.compare(&other, TOLERANCE_FACTOR).is_empty());
    }

    /// The scenarios run to completion and measure a positive cost; the
    /// steal-storm program actually funnels layer releases through one
    /// deque (its structure, independent of timing).
    #[test]
    fn measurements_cover_all_scenarios() {
        let ms = measure_all();
        let names: Vec<&str> = ms.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["chain", "fan", "steal_storm"]);
        for m in &ms {
            assert!(m.ns_per_task > 0.0, "{m:?}");
            assert!(m.tasks > 0, "{m:?}");
        }
        let b = OverheadBaseline::from_measurements(&ms);
        assert!(b.compare(&b, TOLERANCE_FACTOR).is_empty());
    }
}
