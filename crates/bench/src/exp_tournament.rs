//! `stencil-tournament`: every scheme × every scheduler, judged.
//!
//! The pluggable [`runtime::Scheduler`] API makes dispatch order a knob;
//! this experiment turns the knob across the whole portfolio
//! ([`runtime::SchedulerHandle::portfolio`]) on every stencil scheme
//! (base, CA, PA2 when `s ≤ tile/2`, and the DTD front-end) over one
//! deterministic simulated configuration. Each cell is diagnosed with
//! [`insight::diagnose`] and condensed to an [`insight::SchedulerScore`]:
//! makespan against `analyze`'s static lower bound, realized-critical-path
//! "daylight", and worker-lane occupancy. The verdict names the first
//! list scheduler that strictly beats FIFO on the CA scheme — or
//! quantifies why none does.

use crate::statics;
use analyze::AnalyzeConfig;
use ca_stencil::{
    build_base, build_base_dtd, build_ca, build_pa2, kind_names, Problem, StencilConfig,
};
use insight::SchedulerScore;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{Program, RunConfig, SchedulerHandle};
use serde::Serialize;

/// The tournament's run parameters (mirrors `stencil-doctor`'s flags).
#[derive(Debug, Clone)]
pub struct TournamentConfig {
    /// Grid edge length.
    pub n: usize,
    /// Tile edge length.
    pub tile: usize,
    /// Jacobi iterations.
    pub iters: u32,
    /// CA step size `s`.
    pub steps: usize,
    /// Process grid edge (`grid × grid` nodes).
    pub grid: u32,
    /// Kernel adjustment ratio.
    pub ratio: f64,
}

impl Default for TournamentConfig {
    /// The reference configuration — identical to
    /// [`crate::exp_doctor::DoctorConfig::default`], so tournament rows
    /// under the default policy describe the same runs the committed
    /// baseline pins.
    fn default() -> Self {
        TournamentConfig {
            n: 4608,
            tile: 288,
            iters: 10,
            steps: 5,
            grid: 4,
            ratio: 0.4,
        }
    }
}

impl TournamentConfig {
    /// A small sweep for CI's `--check` mode: every cell completes in
    /// milliseconds while still exercising cross-node edges and CA
    /// windows on a 2 × 2 grid.
    pub fn check() -> Self {
        TournamentConfig {
            n: 256,
            tile: 32,
            iters: 6,
            steps: 3,
            grid: 2,
            ratio: 0.4,
        }
    }

    /// The config-identity string printed in the report header.
    pub fn describe(&self) -> String {
        format!(
            "n={} tile={} iters={} steps={} grid={}x{} ratio={} profile=NaCL",
            self.n, self.tile, self.iters, self.steps, self.grid, self.grid, self.ratio
        )
    }
}

/// One (scheme, scheduler) cell of the tournament.
#[derive(Debug, Clone, Serialize)]
pub struct TournamentCell {
    /// The judged quantities.
    pub score: SchedulerScore,
    /// Tasks the run actually executed.
    pub tasks_executed: u64,
    /// Tasks the program declares; a shortfall means the schedule
    /// deadlocked or dropped work.
    pub tasks_total: u64,
}

impl TournamentCell {
    /// True when the run executed every declared task (deadlock-free).
    pub fn complete(&self) -> bool {
        self.tasks_executed == self.tasks_total
    }
}

/// One scheme's row of cells, every scheduler on the same program.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeTable {
    /// Scheme name (`base`, `ca`, `pa2`, `dtd`).
    pub scheme: String,
    /// Static makespan lower bound for the scheme, seconds.
    pub bound_s: f64,
    /// One cell per portfolio scheduler, in portfolio order.
    pub cells: Vec<TournamentCell>,
}

/// The whole tournament.
#[derive(Debug, Clone, Serialize)]
pub struct Tournament {
    /// The run parameters.
    pub config: String,
    /// Worker lanes per node.
    pub lanes: u32,
    /// One table per scheme.
    pub schemes: Vec<SchemeTable>,
    /// The judged outcome on the CA scheme.
    pub verdict: String,
}

/// Run every portfolio scheduler on every scheme of `tc`'s configuration.
pub fn run(tc: &TournamentConfig) -> Tournament {
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    let nodes = tc.grid * tc.grid;
    let cfg = StencilConfig::new(
        Problem::laplace(tc.n),
        tc.tile,
        tc.iters,
        ProcessGrid::new(tc.grid, tc.grid),
    )
    .with_steps(tc.steps)
    .with_ratio(tc.ratio)
    .with_profile(profile.clone());

    let mut programs: Vec<(&str, Program)> = vec![
        ("base", build_base(&cfg, false).program),
        ("ca", build_ca(&cfg, false).program),
    ];
    if tc.steps <= tc.tile / 2 {
        programs.push(("pa2", build_pa2(&cfg, false).program));
    } else {
        println!(
            "(pa2 skipped: steps {} > tile/2 = {})",
            tc.steps,
            tc.tile / 2
        );
    }
    programs.push(("dtd", build_base_dtd(&cfg)));

    let portfolio = SchedulerHandle::portfolio();
    let mut schemes = Vec::new();
    for (name, program) in &programs {
        // One unfolding per scheme serves the static bound, the span
        // join, and every list scheduler's rank table.
        let dag = analyze::unfold(
            program,
            &AnalyzeConfig::new().with_lanes(lanes).without_races(),
        );
        let cols = statics::predict_dag(&dag, lanes);
        let mut cells = Vec::new();
        for sched in &portfolio {
            let report = runtime::run(
                program,
                &RunConfig::simulated(profile.clone(), nodes)
                    .with_scheduler(sched.clone())
                    .with_trace()
                    .with_kind_names(kind_names()),
            );
            crate::report::record(&format!("tournament/{name}/{}", sched.name()), &report);
            let trace = report.trace.as_ref().expect("trace requested");
            let diag = insight::diagnose(trace, &dag, lanes);
            cells.push(TournamentCell {
                score: SchedulerScore::from_diagnosis(
                    &report.scheduler,
                    &diag,
                    cols.makespan_bound,
                ),
                tasks_executed: report.metrics.counter(obs::names::TASKS_EXECUTED),
                tasks_total: program.total_tasks,
            });
        }
        schemes.push(SchemeTable {
            scheme: name.to_string(),
            bound_s: cols.makespan_bound,
            cells,
        });
    }
    let verdict = judge(&schemes);
    Tournament {
        config: tc.describe(),
        lanes,
        schemes,
        verdict,
    }
}

/// The schedulers that order dispatch by a static rank (everything in the
/// portfolio past the FIFO/LIFO/priority shims).
const LIST_SCHEDULERS: [&str; 4] = ["heft", "peft", "dls", "lookahead"];

/// The FIFO cell and the best FIFO-beating list scheduler of one row
/// (lowest makespan among cells that win on makespan or occupancy).
fn best_winner(table: &SchemeTable) -> (Option<&TournamentCell>, Option<&TournamentCell>) {
    let Some(fifo) = table.cells.iter().find(|c| c.score.scheduler == "fifo") else {
        return (None, None);
    };
    let winner = table
        .cells
        .iter()
        .filter(|c| LIST_SCHEDULERS.contains(&c.score.scheduler.as_str()))
        .filter(|c| c.score.beats(&fifo.score))
        .min_by(|a, b| {
            a.score
                .makespan_s
                .partial_cmp(&b.score.makespan_s)
                .expect("finite makespans")
        });
    (Some(fifo), winner)
}

/// Judge the CA scheme's row — name the best list scheduler that strictly
/// beats FIFO (makespan or occupancy), or quantify why none does — then
/// note FIFO-beating list schedulers on the other schemes.
fn judge(schemes: &[SchemeTable]) -> String {
    let Some(ca) = schemes.iter().find(|s| s.scheme == "ca") else {
        return "no CA scheme in the sweep".to_string();
    };
    let (Some(fifo), winner) = best_winner(ca) else {
        return "no FIFO cell in the CA row".to_string();
    };
    let mut out = match winner {
        Some(w) => format!(
            "{} beats fifo on ca: makespan {:.6} s vs {:.6} s ({:+.2} %), occupancy {:.1} % vs {:.1} %",
            w.score.scheduler,
            w.score.makespan_s,
            fifo.score.makespan_s,
            100.0 * (w.score.makespan_s / fifo.score.makespan_s - 1.0),
            100.0 * w.score.occupancy,
            100.0 * fifo.score.occupancy,
        ),
        None => format!(
            "no list scheduler beats fifo on ca: fifo already runs at {:.3}x the static bound \
             with {:.6} s of critical-path daylight ({:.1} % wait) — the CA wavefront's FIFO \
             order already matches rank order, leaving rank policies only ties to reshuffle",
            fifo.score.bound_ratio,
            fifo.score.daylight_s,
            100.0 * fifo.score.daylight_fraction,
        ),
    };
    let elsewhere: Vec<String> = schemes
        .iter()
        .filter(|s| s.scheme != "ca")
        .filter_map(|s| {
            let (fifo, winner) = best_winner(s);
            let (f, w) = (fifo?, winner?);
            Some(format!(
                "{} beats fifo on {} ({:.6} s vs {:.6} s, {:+.2} %, occupancy {:.1} % vs {:.1} %)",
                w.score.scheduler,
                s.scheme,
                w.score.makespan_s,
                f.score.makespan_s,
                100.0 * (w.score.makespan_s / f.score.makespan_s - 1.0),
                100.0 * w.score.occupancy,
                100.0 * f.score.occupancy,
            ))
        })
        .collect();
    if !elsewhere.is_empty() {
        out.push_str(&format!("; elsewhere: {}", elsewhere.join("; ")));
    }
    out
}

/// Print the scheme × scheduler tables and the verdict.
pub fn print(t: &Tournament) {
    println!("stencil-tournament: {} ({} lanes/node)", t.config, t.lanes);
    for table in &t.schemes {
        println!(
            "\n=== {} (static bound {:.6} s) ===",
            table.scheme, table.bound_s
        );
        println!(
            "{:>10} {:>12} {:>9} {:>12} {:>11} {:>11} {:>9}",
            "scheduler",
            "makespan(s)",
            "x bound",
            "daylight(s)",
            "daylight %",
            "occupancy",
            "tasks"
        );
        for c in &table.cells {
            let s = &c.score;
            println!(
                "{:>10} {:>12.6} {:>9.3} {:>12.6} {:>10.1}% {:>10.1}% {:>9}",
                s.scheduler,
                s.makespan_s,
                s.bound_ratio,
                s.daylight_s,
                100.0 * s.daylight_fraction,
                100.0 * s.occupancy,
                if c.complete() {
                    format!("{}", c.tasks_executed)
                } else {
                    format!("{}/{} !!", c.tasks_executed, c.tasks_total)
                },
            );
        }
    }
    println!("\nverdict: {}", t.verdict);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_completes_every_cell() {
        let t = run(&TournamentConfig::check());
        let names: Vec<&str> = t.schemes.iter().map(|s| s.scheme.as_str()).collect();
        assert_eq!(names, ["base", "ca", "pa2", "dtd"]);
        let portfolio = SchedulerHandle::portfolio();
        for table in &t.schemes {
            assert_eq!(table.cells.len(), portfolio.len(), "{}", table.scheme);
            for (cell, sched) in table.cells.iter().zip(&portfolio) {
                assert_eq!(cell.score.scheduler, sched.name());
                assert!(
                    cell.complete(),
                    "{}/{}: {}/{} tasks",
                    table.scheme,
                    cell.score.scheduler,
                    cell.tasks_executed,
                    cell.tasks_total
                );
                // A correct simulation never beats the static bound.
                assert!(
                    cell.score.bound_ratio >= 1.0 - 1e-9,
                    "{}/{}: x bound {}",
                    table.scheme,
                    cell.score.scheduler,
                    cell.score.bound_ratio
                );
            }
        }
        assert!(!t.verdict.is_empty());
    }

    #[test]
    fn simulated_cells_are_deterministic_per_scheduler() {
        // Same config, same scheduler ⇒ bit-identical makespan and
        // occupancy: the tournament is a pure function of its inputs.
        let a = run(&TournamentConfig::check());
        let b = run(&TournamentConfig::check());
        for (ta, tb) in a.schemes.iter().zip(&b.schemes) {
            for (ca, cb) in ta.cells.iter().zip(&tb.cells) {
                assert_eq!(ca.score.makespan_s.to_bits(), cb.score.makespan_s.to_bits());
                assert_eq!(ca.score.occupancy.to_bits(), cb.score.occupancy.to_bits());
            }
        }
    }
}
