//! Figure 6: single-node base-version GFLOP/s against tile size.
//!
//! Two reproductions:
//!
//! 1. **Paper scale, calibrated model** — the analytic single-node rate
//!    for NaCL (problem 20k, tiles 100–500) and Stampede2 (27k, tiles
//!    400–3000), which the cost model was calibrated against (plateaus of
//!    ~11 and ~43.5 GFLOP/s).
//! 2. **Host scale, real execution** — the actual tiled Jacobi program run
//!    by the shared-memory executor on this machine with real threads and
//!    a wall clock, sweeping tile sizes at a host-feasible problem size.

use ca_stencil::{build_base, Problem, StencilConfig};
use machine::{MachineProfile, StencilCostModel};
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use serde::Serialize;

/// One point of a tile-size sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TilePoint {
    /// Tile edge length.
    pub tile: usize,
    /// Node rate in GFLOP/s.
    pub gflops: f64,
}

/// One sweep series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Series {
    /// Label (system + scale).
    pub label: String,
    /// Problem size used.
    pub n: usize,
    /// The sweep.
    pub points: Vec<TilePoint>,
}

/// The model sweep at paper scale for both machines.
pub fn run_model() -> Vec<Fig6Series> {
    let mut out = Vec::new();
    let nacl = StencilCostModel::for_profile(&MachineProfile::nacl());
    out.push(Fig6Series {
        label: "NaCL (model, paper scale)".into(),
        n: 20_000,
        points: [100, 150, 200, 250, 288, 300, 350, 400, 450, 500]
            .iter()
            .map(|&tile| TilePoint {
                tile,
                gflops: nacl.node_gflops_single(20_000, tile),
            })
            .collect(),
    });
    let s2 = StencilCostModel::for_profile(&MachineProfile::stampede2());
    out.push(Fig6Series {
        label: "Stampede2 (model, paper scale)".into(),
        n: 27_000,
        points: [400, 600, 864, 1000, 1350, 1800, 2250, 2700, 3000]
            .iter()
            .map(|&tile| TilePoint {
                tile,
                gflops: s2.node_gflops_single(27_000, tile),
            })
            .collect(),
    });
    out
}

/// The real threaded sweep on this host: runs the actual base program and
/// measures wall-clock GFLOP/s. `n` must be divisible by every tile size.
pub fn run_real(n: usize, tiles: &[usize], iterations: u32, threads: usize) -> Fig6Series {
    let points = tiles
        .iter()
        .map(|&tile| {
            assert_eq!(n % tile, 0, "tile {tile} does not divide {n}");
            let cfg = StencilConfig::new(
                Problem::laplace(n),
                tile,
                iterations,
                ProcessGrid::new(1, 1),
            );
            let build = build_base(&cfg, true);
            let report = run(&build.program, &RunConfig::shared_memory(threads));
            crate::report::record(&format!("real/tile{tile}"), &report);
            TilePoint {
                tile,
                gflops: cfg.gflops(report.makespan),
            }
        })
        .collect();
    Fig6Series {
        label: format!("Localhost (real, {threads} threads)"),
        n,
        points,
    }
}

/// Print all series.
pub fn print(series: &[Fig6Series]) {
    println!("FIGURE 6: single-node base-version performance vs tile size");
    for s in series {
        println!("-- {} (problem {}k)", s.label, s.n / 1000);
        println!("{:>8} {:>12}", "tile", "GFLOP/s");
        for p in &s.points {
            println!("{:>8} {:>12.2}", p.tile, p.gflops);
        }
        let best = s
            .points
            .iter()
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
            .expect("nonempty sweep");
        println!("   best: tile {} at {:.2} GFLOP/s", best.tile, best.gflops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sweep_has_paper_plateaus() {
        let series = run_model();
        let nacl_best = series[0]
            .points
            .iter()
            .map(|p| p.gflops)
            .fold(0.0, f64::max);
        assert!((nacl_best - 11.0).abs() < 1.2, "NaCL best = {nacl_best}");
        let s2_best = series[1]
            .points
            .iter()
            .map(|p| p.gflops)
            .fold(0.0, f64::max);
        assert!((s2_best - 43.5).abs() < 3.0, "S2 best = {s2_best}");
    }

    #[test]
    fn real_sweep_runs_small() {
        let s = run_real(128, &[16, 32, 64], 2, 2);
        assert_eq!(s.points.len(), 3);
        assert!(s.points.iter().all(|p| p.gflops > 0.0));
    }
}
