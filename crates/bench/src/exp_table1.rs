//! Table I: STREAM benchmark results (MB/s), 1-core and 1-node.
//!
//! Two parts: the paper's published numbers for NaCL and Stampede2
//! (carried in the machine profiles and echoed for reference), and a real
//! STREAM run on this host — the measurement a user would put in their own
//! profile via [`machine::MachineProfile::localhost`].

use machine::{run_stream, MachineProfile, StreamKernel, StreamResult};
use serde::Serialize;

/// Paper's Table I, verbatim (MB/s).
pub const PAPER_TABLE1: [(&str, &str, [f64; 4]); 4] = [
    ("NaCL", "1-core", [9814.2, 10080.3, 10289.3, 10271.6]),
    ("NaCL", "1-node", [40091.3, 26335.8, 28992.0, 28547.2]),
    ("Stampede2", "1-core", [10632.6, 10772.0, 13427.1, 13440.0]),
    (
        "Stampede2",
        "1-node",
        [176701.1, 178718.7, 192560.3, 193216.3],
    ),
];

/// Results of the local STREAM measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// One-core run on this host.
    pub local_core: StreamResult,
    /// All-cores run on this host.
    pub local_node: StreamResult,
    /// Host core count used for the 1-node row.
    pub cores: usize,
}

/// Run STREAM on this host. `n` is the per-array element count; pick at
/// least 4× the last-level cache for a true DRAM figure.
pub fn run(n: usize, ntimes: usize) -> Table1 {
    let cores = std::thread::available_parallelism().map_or(4, |c| c.get());
    Table1 {
        local_core: run_stream(1, n, ntimes),
        local_node: run_stream(cores, n, ntimes),
        cores,
    }
}

/// Build a localhost machine profile from the measurement.
pub fn localhost_profile(t: &Table1) -> MachineProfile {
    MachineProfile::localhost(
        t.cores as u32,
        t.local_node.copy_bytes_per_s(),
        t.local_core.copy_bytes_per_s(),
    )
}

/// Print the table in the paper's layout.
pub fn print(t: &Table1) {
    println!("TABLE I: STREAM benchmark results (MB/s)");
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>12} {:>12}",
        "System", "Scale", "COPY", "SCALE", "ADD", "TRIAD"
    );
    for (system, scale, vals) in PAPER_TABLE1 {
        println!(
            "{system:<12} {scale:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}   (paper)",
            vals[0], vals[1], vals[2], vals[3]
        );
    }
    for (scale, r) in [("1-core", &t.local_core), ("1-node", &t.local_node)] {
        println!(
            "{:<12} {scale:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1}   (measured, {} threads)",
            "Localhost",
            r.kernel(StreamKernel::Copy),
            r.kernel(StreamKernel::Scale),
            r.kernel(StreamKernel::Add),
            r.kernel(StreamKernel::Triad),
            r.threads,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_profile() {
        let t = run(64 * 1024, 1);
        let p = localhost_profile(&t);
        assert!(p.mem_bw_node > 0.0);
        assert!(p.mem_bw_core > 0.0);
        assert_eq!(p.cores_per_node as usize, t.cores);
    }

    #[test]
    fn paper_rows_cover_both_machines_and_scales() {
        assert_eq!(PAPER_TABLE1.len(), 4);
        // the profile constants agree with the table's COPY column
        assert!((MachineProfile::nacl().mem_bw_node - 40091.3e6).abs() < 1e3);
        assert!((MachineProfile::stampede2().mem_bw_core - 10632.6e6).abs() < 1e3);
    }
}
