//! Regenerate Figure 9: the CA step-size sweep.

fn main() {
    let panels = bench::exp_fig9::run_all();
    bench::exp_fig9::print(&panels);
    bench::report::write_json(bench::report::json_path("fig9"), &panels);
    bench::report::write_metrics("fig9");
}
