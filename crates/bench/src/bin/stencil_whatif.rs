//! `stencil-whatif`: rank "what to optimize next" by causal replay, and
//! manage the committed prediction-vs-re-run agreement baseline.
//!
//! Traces the base scheme on the deterministic simulated executor, builds
//! an [`insight::WhatIf`] replay of the realized DAG, and predicts the
//! end-to-end makespan under a portfolio of perturbations (faster
//! kernels, 2× bandwidth, half latency, half injection rate). Scenarios
//! with a real-world equivalent are validated by actually re-running the
//! simulator with the change applied; the table prints each prediction's
//! error against its re-run.
//!
//! ```text
//! cargo run --release -p bench --bin stencil-whatif               # rank only
//! cargo run --release -p bench --bin stencil-whatif -- --baseline # write BENCH_whatif.json
//! cargo run --release -p bench --bin stencil-whatif -- --check    # diff against it; exit 1 on drift
//! ```
//!
//! `--check` fails when any scalar drifts more than 2 % from the
//! committed file (the runs are deterministic) or when any validated
//! prediction misses its re-run by more than the committed agreement
//! band. `--file <path>` overrides the baseline location; the run
//! parameters (`--n --tile --iters --grid --ratio`) are recorded in the
//! file and compared verbatim.

use bench::exp_whatif::{self, WhatIfBaseline, WhatIfConfig};

enum Mode {
    Rank,
    WriteBaseline,
    Check,
}

struct Args {
    wc: WhatIfConfig,
    mode: Mode,
    file: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        wc: WhatIfConfig::default(),
        mode: Mode::Rank,
        file: "BENCH_whatif.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--n" => args.wc.n = value().parse().expect("--n takes an integer"),
            "--tile" => args.wc.tile = value().parse().expect("--tile takes an integer"),
            "--iters" => args.wc.iters = value().parse().expect("--iters takes an integer"),
            "--grid" => args.wc.grid = value().parse().expect("--grid takes an integer"),
            "--ratio" => args.wc.ratio = value().parse().expect("--ratio takes a float"),
            "--file" => args.file = value(),
            "--baseline" => args.mode = Mode::WriteBaseline,
            "--check" => args.mode = Mode::Check,
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --n --tile --iters --grid --ratio \
                     --baseline --check --file <path>"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Relative drift band for the deterministic scalars in the file.
const REL_BAND: f64 = 0.02;

fn main() {
    let args = parse_args();
    let run = exp_whatif::run(&args.wc);
    exp_whatif::print(&run);
    let current = run.baseline();

    match args.mode {
        Mode::Rank => {}
        Mode::WriteBaseline => {
            std::fs::write(&args.file, current.to_json()).expect("write baseline file");
            println!(
                "\nwrote {} scenarios ({} validated) to {}",
                current.scenarios.len(),
                current
                    .scenarios
                    .values()
                    .filter(|s| s.actual_s.is_some())
                    .count(),
                args.file
            );
        }
        Mode::Check => {
            let text = std::fs::read_to_string(&args.file).unwrap_or_else(|e| {
                eprintln!(
                    "cannot read baseline {}: {e} (run with --baseline first)",
                    args.file
                );
                std::process::exit(2);
            });
            let committed = WhatIfBaseline::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {}: {e}", args.file);
                std::process::exit(2);
            });
            let violations = committed.compare(&current, REL_BAND);
            if violations.is_empty() {
                println!("\nwhat-if check OK against {}", args.file);
            } else {
                eprintln!("\nwhat-if check FAILED against {}:", args.file);
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
    }
}
