//! PA1 vs PA2 comparison across kernel-adjustment ratios.

use machine::MachineProfile;

fn main() {
    let ratios = [0.2, 0.4, 0.6, 1.0];
    let mut panels = Vec::new();
    for profile in [MachineProfile::nacl(), MachineProfile::stampede2()] {
        for nodes in [16u32, 64] {
            panels.push(bench::exp_pa_variants::run_panel(&profile, nodes, &ratios));
        }
    }
    bench::exp_pa_variants::print(&panels);
    bench::report::write_metrics("pa_variants");
}
