//! `stencil-top`: watch a stencil run live — per-worker occupancy over
//! the last sample window, queue depths, in-flight traffic, and the
//! tracer's own overhead — refreshed in place like `top`.
//!
//! ```text
//! cargo run --release -p bench --bin stencil-top              # live view of a shared-memory run
//! cargo run --release -p bench --bin stencil-top -- --once    # one frame of the reference sim; exit 1 over budget
//! cargo run --release -p bench --bin stencil-top -- --refresh-ms 100
//! ```
//!
//! `--once` is the CI smoke wired into `ci.sh`: it runs the
//! `stencil-doctor` reference workload on the deterministic simulator
//! with streaming telemetry, prints the final frame, and exits nonzero
//! if the tracer overran its overhead budget, dropped spans, or
//! published no samples.

use bench::exp_top;
use obs::Live;
use std::time::Duration;

fn main() {
    let mut once = false;
    let mut refresh = Duration::from_millis(250);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--once" => once = true,
            "--refresh-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--refresh-ms takes milliseconds"));
                refresh = Duration::from_millis(ms.max(16));
            }
            other => {
                eprintln!("unknown flag {other}; flags: --once --refresh-ms <ms>");
                std::process::exit(2);
            }
        }
    }

    if once {
        let r = exp_top::run_once();
        print!("{}", r.frame);
        if !r.ok() {
            eprintln!(
                "stencil-top: telemetry unhealthy (samples {}, dropped {}, overhead {:.4} %)",
                r.samples,
                r.dropped,
                100.0 * r.overhead.fraction()
            );
            std::process::exit(1);
        }
        println!(
            "telemetry healthy: {} samples, nothing dropped, overhead within budget",
            r.samples
        );
        return;
    }

    let live = Live::new();
    let (program, cfg) = exp_top::live_run(live.clone());
    let worker = std::thread::spawn(move || runtime::run(&program, &cfg));
    while !worker.is_finished() {
        let frame = exp_top::render_frame(&live.latest_all(), None);
        // Clear and home, then draw the frame in place.
        print!("\x1b[2J\x1b[Hstencil-top — shared-memory stencil, refreshing every {refresh:?}\n{frame}");
        std::thread::sleep(refresh);
    }
    let report = worker.join().expect("run thread");
    let frame = exp_top::render_frame(&live.latest_all(), Some(&report.overhead));
    print!(
        "\x1b[2J\x1b[Hstencil-top — run complete in {:.3} s\n{frame}",
        report.makespan
    );
}
