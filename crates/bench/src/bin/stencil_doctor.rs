//! `stencil-doctor`: diagnose a stencil run and manage the bench
//! regression baseline.
//!
//! Runs base and CA on the deterministic simulated executor, joins the
//! trace back to the statically unfolded task graph, and prints: idle-gap
//! attribution (comm-wait / dependency-wait / starvation), per-kind
//! duration percentiles, the realized critical path against the static
//! makespan lower bound, and a step-size recommendation.
//!
//! ```text
//! cargo run --release -p bench --bin stencil-doctor              # diagnose only
//! cargo run --release -p bench --bin stencil-doctor -- --baseline  # write BENCH_stencil.json
//! cargo run --release -p bench --bin stencil-doctor -- --check     # diff against it; exit 1 on drift
//! ```
//!
//! `--file <path>` overrides the baseline location; the run parameters
//! (`--n --tile --iters --steps --grid --ratio`) default to the committed
//! baseline configuration and are recorded in the file, so a check
//! against a baseline from different parameters fails loudly instead of
//! comparing apples to oranges.

use bench::exp_doctor::{self, DoctorConfig};
use insight::{Baseline, Tolerance};

enum Mode {
    Diagnose,
    WriteBaseline,
    Check,
}

struct Args {
    dc: DoctorConfig,
    mode: Mode,
    file: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        dc: DoctorConfig::default(),
        mode: Mode::Diagnose,
        file: "BENCH_stencil.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--n" => args.dc.n = value().parse().expect("--n takes an integer"),
            "--tile" => args.dc.tile = value().parse().expect("--tile takes an integer"),
            "--iters" => args.dc.iters = value().parse().expect("--iters takes an integer"),
            "--steps" => args.dc.steps = value().parse().expect("--steps takes an integer"),
            "--grid" => args.dc.grid = value().parse().expect("--grid takes an integer"),
            "--ratio" => args.dc.ratio = value().parse().expect("--ratio takes a float"),
            "--file" => args.file = value(),
            "--baseline" => args.mode = Mode::WriteBaseline,
            "--check" => args.mode = Mode::Check,
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --n --tile --iters --steps --grid --ratio \
                     --baseline --check --file <path>"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let run = exp_doctor::run(&args.dc);
    exp_doctor::print(&run);
    let current = run.baseline();

    match args.mode {
        Mode::Diagnose => {}
        Mode::WriteBaseline => {
            std::fs::write(&args.file, current.to_json()).expect("write baseline file");
            println!(
                "\nwrote baseline for {} schemes to {}",
                current.schemes.len(),
                args.file
            );
        }
        Mode::Check => {
            let text = std::fs::read_to_string(&args.file).unwrap_or_else(|e| {
                eprintln!(
                    "cannot read baseline {}: {e} (run with --baseline first)",
                    args.file
                );
                std::process::exit(2);
            });
            let committed = Baseline::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {}: {e}", args.file);
                std::process::exit(2);
            });
            let violations = committed.compare(&current, &Tolerance::default());
            if violations.is_empty() {
                println!("\nbaseline check OK against {}", args.file);
            } else {
                eprintln!("\nbaseline check FAILED against {}:", args.file);
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }

            // The work-stealing occupancy gate: a real shared-memory run
            // (kernel bodies on) must keep its lanes busier than every
            // committed *simulated* occupancy — the executor's dispatch
            // loop is not allowed to idle lanes the simulator fills.
            // Best of a few probes: wall-clock occupancy is load-noisy.
            let worst = committed
                .schemes
                .values()
                .map(|s| s.occupancy)
                .fold(0.0f64, f64::max);
            let real =
                exp_doctor::probe_occupancy_above(worst, exp_doctor::OCCUPANCY_PROBE_ATTEMPTS);
            println!(
                "real shared-memory probe ({} workers): occupancy {:.4} · \
                 {} steals · {} failed sweeps · {} overflow spills",
                real.threads, real.occupancy, real.steals, real.steal_fails, real.overflow_pushes
            );
            println!("{}", real.starvation.render());
            if real.occupancy > worst {
                println!(
                    "occupancy gate OK: real {:.4} > committed simulated max {:.4}",
                    real.occupancy, worst
                );
            } else {
                eprintln!(
                    "occupancy gate FAILED: real {:.4} <= committed simulated max {:.4}",
                    real.occupancy, worst
                );
                std::process::exit(1);
            }
        }
    }
}
