//! `stencil-lint`: run the static task-graph verifier over every scheme's
//! program for one stencil configuration and print what it proves.
//!
//! For each of base, CA (PA1), PA2 and the DTD front-end, the [`analyze`]
//! crate unfolds the parameterized task graph and checks structural
//! consistency, deadlock freedom and write-race freedom, then reports the
//! static communication volume, the redundant flops, and the critical-path
//! makespan lower bound. With `--dataflow` it additionally runs the
//! region-dataflow pass: a halo-coverage proof over every declared read
//! footprint, and dead-transfer detection (bytes on the wire no read ever
//! touches). Exit code 1 if any diagnostic fires.
//!
//! ```text
//! cargo run -p bench --bin stencil-lint -- --n 256 --tile 32 --iters 20 --steps 8 --grid 2 \
//!     --dataflow --steady-state
//! ```
//!
//! Flags beyond the geometry:
//!
//! * `--dataflow` — enable the region-dataflow checks.
//! * `--steady-state` — verify prologue + one period instead of sweeping
//!   the full unfolded DAG (prints the detected period).
//! * `--check` — quiet mode for CI: print one line per scheme.
//! * `--mutate-ca` — lint the deliberately halo-shrunk CA build; the run
//!   is then expected to exit 1 with an uncovered-read witness.

use bench::lint::{lint_schemes, LintOptions};
use ca_stencil::{Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;

struct Args {
    n: usize,
    tile: usize,
    iters: u32,
    steps: usize,
    grid: u32,
    dataflow: bool,
    steady_state: bool,
    check: bool,
    mutate_ca: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 256,
        tile: 32,
        iters: 20,
        steps: 8,
        grid: 2,
        dataflow: false,
        steady_state: false,
        check: false,
        mutate_ca: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--n" => args.n = value().parse().expect("--n takes an integer"),
            "--tile" => args.tile = value().parse().expect("--tile takes an integer"),
            "--iters" => args.iters = value().parse().expect("--iters takes an integer"),
            "--steps" => args.steps = value().parse().expect("--steps takes an integer"),
            "--grid" => args.grid = value().parse().expect("--grid takes an integer"),
            "--dataflow" => args.dataflow = true,
            "--steady-state" => args.steady_state = true,
            "--check" => args.check = true,
            "--mutate-ca" => {
                args.mutate_ca = true;
                args.dataflow = true;
            }
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --n --tile --iters --steps --grid \
                     --dataflow --steady-state --check --mutate-ca"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let a = parse_args();
    let cfg = StencilConfig::new(
        Problem::laplace(a.n),
        a.tile,
        a.iters,
        ProcessGrid::new(a.grid, a.grid),
    )
    .with_steps(a.steps);
    let profile = MachineProfile::nacl();
    let opts = LintOptions {
        dataflow: a.dataflow,
        steady_state: a.steady_state,
        lanes: profile.compute_threads(),
        mutate_ca: a.mutate_ca,
    };
    if !a.check {
        println!(
            "stencil-lint: n={} tile={} iters={} steps={} grid={}x{} (lanes/node={})",
            a.n, a.tile, a.iters, a.steps, a.grid, a.grid, opts.lanes
        );
    }

    let (lints, skipped) = lint_schemes(&cfg, &opts);
    for s in &skipped {
        println!("({s})");
    }

    if !a.check {
        println!(
            "{:>6} {:>9} {:>9} {:>10} {:>12} {:>12} {:>11} {:>12} {:>9} {:>6}",
            "scheme",
            "tasks",
            "edges",
            "msgs",
            "bytes",
            "red flops",
            "crit path",
            "dead bytes",
            "period",
            "diags"
        );
    }
    let mut dirty = false;
    for lint in &lints {
        let analysis = &lint.analysis;
        let cp = analysis
            .path
            .as_ref()
            .map(|p| p.critical_path)
            .unwrap_or(f64::NAN);
        let (dead, period) = analysis
            .dataflow
            .as_ref()
            .map(|d| {
                let period = match d.period {
                    Some(p) => format!("{}+{}", d.prologue, p),
                    None => "full".to_string(),
                };
                (d.dead_bytes.to_string(), period)
            })
            .unwrap_or_else(|| ("-".to_string(), "-".to_string()));
        if a.check {
            println!(
                "{}: {} diagnostic(s), dead bytes {}, period {}",
                lint.name,
                analysis.diagnostics.len(),
                dead,
                period
            );
        } else {
            println!(
                "{:>6} {:>9} {:>9} {:>10} {:>12} {:>12} {:>10.4}s {:>12} {:>9} {:>6}",
                lint.name,
                analysis.tasks,
                analysis.edges,
                analysis.comm.cross_messages,
                analysis.comm.cross_bytes,
                analysis.flops.redundant,
                cp,
                dead,
                period,
                analysis.diagnostics.len(),
            );
        }
        if !lint.is_clean() {
            dirty = true;
            for d in &lint.deduped {
                let kind = d.kind.map(|k| format!(" kind {k}")).unwrap_or_default();
                println!(
                    "{}: [{}{}] x{}: {}",
                    lint.name, d.check, kind, d.count, d.example
                );
            }
        }
    }
    if dirty {
        std::process::exit(1);
    }
    println!("all schemes clean");
}
