//! `stencil-lint`: run the static task-graph verifier over every scheme's
//! program for one stencil configuration and print what it proves.
//!
//! For each of base, CA (PA1), PA2 and the DTD front-end, the [`analyze`]
//! crate unfolds the parameterized task graph and checks structural
//! consistency, deadlock freedom and write-race freedom, then reports the
//! static communication volume, the redundant flops, and the critical-path
//! makespan lower bound. Exit code 1 if any diagnostic fires.
//!
//! ```text
//! cargo run -p bench --bin stencil-lint -- --n 256 --tile 32 --iters 20 --steps 8 --grid 2
//! ```

use analyze::{analyze_program, AnalyzeConfig};
use ca_stencil::{build_base, build_base_dtd, build_ca, build_pa2, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::Program;

struct Args {
    n: usize,
    tile: usize,
    iters: u32,
    steps: usize,
    grid: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 256,
        tile: 32,
        iters: 20,
        steps: 8,
        grid: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--n" => args.n = value().parse().expect("--n takes an integer"),
            "--tile" => args.tile = value().parse().expect("--tile takes an integer"),
            "--iters" => args.iters = value().parse().expect("--iters takes an integer"),
            "--steps" => args.steps = value().parse().expect("--steps takes an integer"),
            "--grid" => args.grid = value().parse().expect("--grid takes an integer"),
            other => {
                eprintln!("unknown flag {other}; flags: --n --tile --iters --steps --grid");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let a = parse_args();
    let cfg = StencilConfig::new(
        Problem::laplace(a.n),
        a.tile,
        a.iters,
        ProcessGrid::new(a.grid, a.grid),
    )
    .with_steps(a.steps);
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    println!(
        "stencil-lint: n={} tile={} iters={} steps={} grid={}x{} (lanes/node={lanes})",
        a.n, a.tile, a.iters, a.steps, a.grid, a.grid
    );

    let mut schemes: Vec<(&str, Program)> = vec![
        ("base", build_base(&cfg, false).program),
        ("ca", build_ca(&cfg, false).program),
        ("dtd", build_base_dtd(&cfg)),
    ];
    if a.steps <= a.tile / 2 {
        schemes.insert(2, ("pa2", build_pa2(&cfg, false).program));
    } else {
        println!("(pa2 skipped: steps {} > tile/2 = {})", a.steps, a.tile / 2);
    }

    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12} {:>12} {:>11} {:>11} {:>6}",
        "scheme", "tasks", "edges", "msgs", "bytes", "red flops", "crit path", "bound", "diags"
    );
    let mut dirty = false;
    for (name, program) in &schemes {
        let analysis = analyze_program(program, &AnalyzeConfig::new().with_lanes(lanes));
        let (cp, bound) = analysis
            .path
            .as_ref()
            .map(|p| (p.critical_path, p.makespan_lower_bound))
            .unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:>6} {:>9} {:>9} {:>10} {:>12} {:>12} {:>10.4}s {:>10.4}s {:>6}",
            name,
            analysis.tasks,
            analysis.edges,
            analysis.comm.cross_messages,
            analysis.comm.cross_bytes,
            analysis.flops.redundant,
            cp,
            bound,
            analysis.diagnostics.len(),
        );
        if !analysis.is_clean() {
            dirty = true;
            println!("{name}: {}", analysis.report());
        }
    }
    if dirty {
        std::process::exit(1);
    }
    println!("all schemes clean");
}
