//! Regenerate Figure 5: NetPIPE over the simulated interconnects.

fn main() {
    let series = bench::exp_fig5::run();
    bench::exp_fig5::print(&series);
    bench::report::write_json(bench::report::json_path("fig5"), &series);
    for s in &series {
        for p in &s.points {
            bench::report::record_scalars(
                &format!("fig5/{}/{}B", s.system, p.bytes),
                &[
                    ("msg_bytes", p.bytes as u64),
                    ("bandwidth_bits", p.bandwidth_bits as u64),
                    ("one_way_ns", (p.one_way_time * 1e9) as u64),
                ],
            );
        }
    }
    bench::report::write_metrics("fig5");
}
