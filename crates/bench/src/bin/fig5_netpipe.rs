//! Regenerate Figure 5: NetPIPE over the simulated interconnects.

fn main() {
    let series = bench::exp_fig5::run();
    bench::exp_fig5::print(&series);
    bench::report::write_json(bench::report::json_path("fig5"), &series);
}
