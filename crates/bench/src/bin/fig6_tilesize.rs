//! Regenerate Figure 6: tile-size sweep — calibrated model at paper scale
//! plus a real threaded run at host scale.

fn main() {
    let mut series = bench::exp_fig6::run_model();
    let threads = std::thread::available_parallelism()
        .map_or(4, |c| c.get())
        .saturating_sub(1)
        .max(1);
    let (n, iters) = if bench::fast_mode() {
        (512, 4)
    } else {
        (2048, 10)
    };
    series.push(bench::exp_fig6::run_real(
        n,
        &[32, 64, 128, 256, 512],
        iters,
        threads,
    ));
    bench::exp_fig6::print(&series);
    bench::report::write_metrics("fig6");
}
