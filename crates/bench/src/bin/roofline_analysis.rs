//! Reproduce the paper's Section VI-A roofline analysis.

fn main() {
    let rows = bench::exp_roofline::run();
    bench::exp_roofline::print(&rows);
}
