//! Reproduce the paper's Section VI-A roofline analysis.

fn main() {
    let rows = bench::exp_roofline::run();
    bench::exp_roofline::print(&rows);
    for r in &rows {
        bench::report::record_scalars(
            &format!("roofline/{}", r.system),
            &[
                ("mem_bw_mb_s", (r.mem_bw_gb * 1e3) as u64),
                ("plateau_mflops", (r.plateau * 1e3) as u64),
                ("window_high_mflops", (r.window_high * 1e3) as u64),
            ],
        );
    }
    bench::report::write_metrics("roofline");
}
