//! Quick calibration probe: CA vs base speedup across kernel-adjustment
//! ratios on the paper's Figure 8 configurations (reduced iteration count).

use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn main() {
    let iters = 20;
    for (profile, n, tile) in [
        (MachineProfile::nacl(), 23040usize, 288usize),
        (MachineProfile::stampede2(), 55296, 864),
    ] {
        for nodes in [4u32, 16, 64] {
            for ratio in [0.2, 0.4, 0.6, 0.8, 1.0] {
                let cfg = StencilConfig::new(
                    Problem::laplace(n),
                    tile,
                    iters,
                    ProcessGrid::square(nodes),
                )
                .with_steps(15)
                .with_ratio(ratio)
                .with_profile(profile.clone());
                let base = run(
                    &build_base(&cfg, false).program,
                    &RunConfig::simulated(profile.clone(), nodes),
                );
                let ca = run(
                    &build_ca(&cfg, false).program,
                    &RunConfig::simulated(profile.clone(), nodes),
                );
                let label = format!("probe/{}/{}n/r{:.1}", profile.name, nodes, ratio);
                bench::report::record(&format!("{label}/base"), &base);
                bench::report::record(&format!("{label}/ca"), &ca);
                println!(
                    "{} nodes={nodes} ratio={ratio:.1}: base {:.1} GF, ca {:.1} GF, ca/base = {:.3} (occ {:.2} vs {:.2})",
                    profile.name,
                    cfg.gflops(base.makespan),
                    cfg.gflops(ca.makespan),
                    base.makespan / ca.makespan,
                    base.node_occupancy.iter().sum::<f64>() / nodes as f64,
                    ca.node_occupancy.iter().sum::<f64>() / nodes as f64,
                );
            }
        }
    }
    bench::report::write_metrics("probe");
}
