//! `stencil-tournament`: run every scheme × every scheduler and judge the
//! portfolio.
//!
//! For each stencil scheme (base, CA, PA2 when `s ≤ tile/2`, DTD) the
//! tournament runs the deterministic simulated executor once per
//! portfolio scheduler and prints a table of makespan, achieved/bound
//! ratio, realized-critical-path daylight, and occupancy, followed by a
//! verdict on whether any list scheduler strictly beats FIFO on the CA
//! scheme.
//!
//! ```text
//! cargo run --release -p bench --bin stencil-tournament            # full reference sweep + JSON
//! cargo run --release -p bench --bin stencil-tournament -- --check # CI gate (small sweep)
//! ```
//!
//! `--check` runs a small configuration, fails if any (scheme,
//! scheduler) cell deadlocks or undercuts the static bound, and — when
//! `BENCH_stencil.json` exists — re-runs the doctor's reference
//! configuration under the default policy to assert the committed
//! baseline is bit-for-bit intact (the scheduler rework must not perturb
//! default dispatch order). No files are written in check mode.

use bench::exp_doctor::{self, DoctorConfig};
use bench::exp_tournament::{self, TournamentConfig};
use bench::report;
use insight::{Baseline, Tolerance};

struct Args {
    tc: TournamentConfig,
    check: bool,
    file: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        tc: TournamentConfig::default(),
        check: false,
        file: "BENCH_stencil.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value after {flag}"))
        };
        match flag.as_str() {
            "--n" => args.tc.n = value().parse().expect("--n takes an integer"),
            "--tile" => args.tc.tile = value().parse().expect("--tile takes an integer"),
            "--iters" => args.tc.iters = value().parse().expect("--iters takes an integer"),
            "--steps" => args.tc.steps = value().parse().expect("--steps takes an integer"),
            "--grid" => args.tc.grid = value().parse().expect("--grid takes an integer"),
            "--ratio" => args.tc.ratio = value().parse().expect("--ratio takes a float"),
            "--file" => args.file = value(),
            "--check" => args.check = true,
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --n --tile --iters --steps --grid --ratio \
                     --check --file <path>"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.check {
        check(&args.file);
        return;
    }
    let t = exp_tournament::run(&args.tc);
    exp_tournament::print(&t);
    report::write_json(report::json_path("tournament"), &t);
    report::write_metrics("tournament");
}

/// The CI gate: every cell of a small sweep completes deadlock-free and
/// within physics, and the committed doctor baseline still matches a
/// default-policy rerun exactly.
fn check(baseline_file: &str) {
    let t = exp_tournament::run(&TournamentConfig::check());
    exp_tournament::print(&t);
    let mut failed = false;
    for table in &t.schemes {
        for cell in &table.cells {
            if !cell.complete() {
                eprintln!(
                    "FAIL {}/{}: {}/{} tasks executed (deadlock or dropped work)",
                    table.scheme, cell.score.scheduler, cell.tasks_executed, cell.tasks_total
                );
                failed = true;
            }
            if cell.score.bound_ratio < 1.0 - 1e-9 {
                eprintln!(
                    "FAIL {}/{}: makespan {:.6} s beats the static bound ({:.3}x)",
                    table.scheme,
                    cell.score.scheduler,
                    cell.score.makespan_s,
                    cell.score.bound_ratio
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nall {} schemes completed under every scheduler",
        t.schemes.len()
    );
    // Metrics accumulated during the sweep are deliberately dropped: the
    // check writes nothing.
    let _ = report::drain_metrics();

    match std::fs::read_to_string(baseline_file) {
        Ok(text) => {
            let committed = Baseline::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {baseline_file}: {e}");
                std::process::exit(2);
            });
            let run = exp_doctor::run(&DoctorConfig::default());
            let _ = report::drain_metrics();
            let violations = committed.compare(&run.baseline(), &Tolerance::default());
            if violations.is_empty() {
                println!("default-policy baseline intact against {baseline_file}");
            } else {
                eprintln!("default-policy baseline DRIFTED against {baseline_file}:");
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
        Err(_) => {
            println!("(no {baseline_file} here — skipping the default-policy baseline check)");
        }
    }
}
