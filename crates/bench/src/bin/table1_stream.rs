//! Regenerate Table I: STREAM on this host plus the paper's numbers.

fn main() {
    // 8M doubles per array (192 MB working set) unless running fast.
    let n = if bench::fast_mode() { 1 << 20 } else { 8 << 20 };
    let t = bench::exp_table1::run(n, 5);
    bench::exp_table1::print(&t);
    let p = bench::exp_table1::localhost_profile(&t);
    println!(
        "\nderived localhost profile: {} cores, node COPY {:.1} GB/s, core COPY {:.1} GB/s",
        p.cores_per_node,
        p.mem_bw_node / 1e9,
        p.mem_bw_core / 1e9
    );
}
