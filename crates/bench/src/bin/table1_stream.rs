//! Regenerate Table I: STREAM on this host plus the paper's numbers.

fn main() {
    // 8M doubles per array (192 MB working set) unless running fast.
    let n = if bench::fast_mode() { 1 << 20 } else { 8 << 20 };
    let t = bench::exp_table1::run(n, 5);
    bench::exp_table1::print(&t);
    let p = bench::exp_table1::localhost_profile(&t);
    println!(
        "\nderived localhost profile: {} cores, node COPY {:.1} GB/s, core COPY {:.1} GB/s",
        p.cores_per_node,
        p.mem_bw_node / 1e9,
        p.mem_bw_core / 1e9
    );
    for (label, res) in [("core", &t.local_core), ("node", &t.local_node)] {
        bench::report::record_scalars(
            &format!("table1/localhost/{label}"),
            &[
                ("threads", res.threads as u64),
                ("copy_mb_s", res.mb_per_s[0] as u64),
                ("scale_mb_s", res.mb_per_s[1] as u64),
                ("add_mb_s", res.mb_per_s[2] as u64),
                ("triad_mb_s", res.mb_per_s[3] as u64),
            ],
        );
    }
    bench::report::write_metrics("table1");
}
