//! Regenerate Figure 8: the kernel-adjustment-ratio sweep.

fn main() {
    let panels = bench::exp_fig8::run_all();
    bench::exp_fig8::print(&panels);
    println!(
        "\nbest CA-over-base improvement: NaCL {:.0}% (paper: up to 57%), Stampede2 {:.0}% (paper: up to 33%)",
        bench::exp_fig8::best_improvement(&panels, "NaCL"),
        bench::exp_fig8::best_improvement(&panels, "Stampede2"),
    );
    bench::report::write_json(bench::report::json_path("fig8"), &panels);
    bench::report::write_metrics("fig8");
}
