//! Regenerate Figure 10: one node's execution trace for base and CA.
//! Writes, per version, full Gantt rows to `fig10_<version>.gantt` and
//! the whole-cluster span trace as Chrome `trace_event` JSON to
//! `fig10_<version>.trace.json` (load it in Perfetto or
//! `chrome://tracing`); prints the occupancy/median digest and drops the
//! run's `obs` metrics as JSON lines plus a Prometheus-style text
//! exposition (`fig10_<version>.prom`) with the final live gauges and
//! tracer overhead.

use std::io::Write;

fn main() {
    let r = bench::exp_fig10::run(5);
    bench::exp_fig10::print(&r.fig);
    for (i, side) in r.fig.sides.iter().enumerate() {
        let version = side.version.to_lowercase();
        let path = format!("fig10_{version}.gantt");
        let mut f = std::fs::File::create(&path).expect("create gantt file");
        for row in &side.gantt {
            writeln!(f, "{row}").expect("write gantt row");
        }
        println!("wrote {} rows to {path}", side.gantt.len());

        let chrome = format!("fig10_{version}.trace.json");
        std::fs::write(&chrome, r.chrome_json(i)).expect("write chrome trace");
        println!("wrote {} spans to {chrome}", r.traces[i].len());

        let doctor = format!("fig10_{version}.doctor.txt");
        std::fs::write(&doctor, &r.reports[i]).expect("write doctor report");
        println!("wrote diagnosis to {doctor}");

        bench::report::write_prom(&format!("fig10_{version}"), &r.proms[i]);
    }
    bench::report::write_metrics("fig10");
}
