//! Regenerate Figure 10: one node's execution trace for base and CA.
//! Writes full Gantt rows to `fig10_<version>.gantt` in the current
//! directory; prints the occupancy/median digest.

use std::io::Write;

fn main() {
    let fig = bench::exp_fig10::run(5);
    bench::exp_fig10::print(&fig);
    for side in &fig.sides {
        let path = format!("fig10_{}.gantt", side.version.to_lowercase());
        let mut f = std::fs::File::create(&path).expect("create gantt file");
        for row in &side.gantt {
            writeln!(f, "{row}").expect("write gantt row");
        }
        println!("wrote {} rows to {path}", side.gantt.len());
    }
}
