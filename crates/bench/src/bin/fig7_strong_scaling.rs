//! Regenerate Figure 7: strong scaling of PETSc vs base vs CA.

fn main() {
    let series = bench::exp_fig7::run_all();
    bench::exp_fig7::print(&series);
    bench::report::write_json(bench::report::json_path("fig7"), &series);
    bench::report::write_metrics("fig7");
}
