//! `runtime-overhead`: measure the work-stealing executor's per-task
//! dispatch cost and manage its committed regression baseline.
//!
//! ```text
//! cargo run --release -p bench --bin runtime-overhead               # measure and print
//! cargo run --release -p bench --bin runtime-overhead -- --baseline # write BENCH_runtime_overhead.json
//! cargo run --release -p bench --bin runtime-overhead -- --check    # diff against it; exit 1 on drift
//! ```
//!
//! `--file <path>` overrides the baseline location. See
//! `bench::exp_overhead` for the scenarios and the tolerance story.

use bench::exp_overhead::{self, OverheadBaseline, BASELINE_FILE, TOLERANCE_FACTOR};

enum Mode {
    Measure,
    WriteBaseline,
    Check,
}

fn main() {
    let mut mode = Mode::Measure;
    let mut file = BASELINE_FILE.to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => mode = Mode::WriteBaseline,
            "--check" => mode = Mode::Check,
            "--file" => file = it.next().expect("missing value after --file"),
            other => {
                eprintln!("unknown flag {other}; flags: --baseline --check --file <path>");
                std::process::exit(2);
            }
        }
    }

    let measurements = exp_overhead::measure_all();
    println!("runtime-overhead: {}", exp_overhead::describe());
    for m in &measurements {
        println!(
            "  {:<12} {:>6} tasks · {} threads · {:>10.0} ns/task · {} steals",
            m.name, m.tasks, m.threads, m.ns_per_task, m.steals
        );
    }
    let current = OverheadBaseline::from_measurements(&measurements);

    match mode {
        Mode::Measure => {}
        Mode::WriteBaseline => {
            std::fs::write(&file, current.to_json()).expect("write baseline file");
            println!(
                "wrote baseline for {} scenarios to {file}",
                current.scenarios.len()
            );
        }
        Mode::Check => {
            let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {file}: {e} (run with --baseline first)");
                std::process::exit(2);
            });
            let committed = OverheadBaseline::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {file}: {e}");
                std::process::exit(2);
            });
            let violations = committed.compare(&current, TOLERANCE_FACTOR);
            if violations.is_empty() {
                println!("overhead check OK against {file} (band {TOLERANCE_FACTOR}x)");
            } else {
                eprintln!("overhead check FAILED against {file}:");
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
    }
}
