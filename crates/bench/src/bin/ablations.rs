//! Run every ablation study: scheduler policy, comm-engine count,
//! rendezvous threshold, per-message runtime cost, and the exascale
//! memory-bandwidth projection from the paper's conclusion.

fn main() {
    let iters = bench::iterations().min(30);
    bench::exp_ablations::print(
        "scheduler policy (16 NaCL nodes, ratio 0.4)",
        &bench::exp_ablations::scheduler_ablation(iters),
    );
    bench::exp_ablations::print(
        "communication engines (16 NaCL nodes, ratio 0.4)",
        &bench::exp_ablations::comm_engine_ablation(iters),
    );
    bench::exp_ablations::print(
        "rendezvous threshold (16 NaCL nodes, ratio 0.4)",
        &bench::exp_ablations::rendezvous_ablation(iters),
    );
    bench::exp_ablations::print(
        "per-message runtime cost (16 NaCL nodes, ratio 0.4)",
        &bench::exp_ablations::msg_cost_ablation(iters),
    );
    bench::exp_ablations::print(
        "exascale projection: memory bandwidth x f, network fixed, ratio 1.0",
        &bench::exp_ablations::exascale_projection(iters),
    );
    bench::report::write_metrics("ablations");
}
