//! The Krylov motivation: real CG solve + distributed iteration pricing.

use machine::MachineProfile;

fn main() {
    for profile in [MachineProfile::nacl(), MachineProfile::stampede2()] {
        let n = if profile.name == "Stampede2" { 55_296 } else { 23_040 };
        let (solve, rows) = bench::exp_krylov::run(&profile, n);
        bench::exp_krylov::print(&profile, n, &solve, &rows);
        println!();
    }
}
