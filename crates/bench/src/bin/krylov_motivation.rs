//! The Krylov motivation: real CG solve + distributed iteration pricing.

use machine::MachineProfile;

fn main() {
    for profile in [MachineProfile::nacl(), MachineProfile::stampede2()] {
        let n = if profile.name == "Stampede2" {
            55_296
        } else {
            23_040
        };
        let (solve, rows) = bench::exp_krylov::run(&profile, n);
        bench::exp_krylov::print(&profile, n, &solve, &rows);
        println!();
        bench::report::record_scalars(
            &format!("krylov/{}/cg", profile.name),
            &[("cg_iterations", u64::from(solve.iterations))],
        );
        for r in &rows {
            bench::report::record_scalars(
                &format!("krylov/{}/{}n", profile.name, r.nodes),
                &[
                    ("standard_iter_ns", (r.standard * 1e9) as u64),
                    ("pipelined_iter_ns", (r.pipelined * 1e9) as u64),
                ],
            );
        }
    }
    bench::report::write_metrics("krylov");
}
