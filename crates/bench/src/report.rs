//! Result export: every experiment binary can drop its data as JSON next
//! to the human-readable table, for downstream plotting, and every run's
//! `obs` metric snapshot as JSON-lines for diffing across runs.
//!
//! The JSONL side works like a default metric registry: experiment
//! modules call [`record`] (or [`record_scalars`]) as they execute, and
//! the figure binary flushes everything with [`write_metrics`] at the
//! end. The log is thread-local — each binary is single-threaded at the
//! harness level, so one log per process is exactly one log per figure.

use serde::Serialize;
use std::cell::RefCell;
use std::path::Path;

/// Serialize `data` as pretty JSON into `path`. Panics on I/O failure —
/// the harness treats an unwritable results directory as fatal.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, data: &T) {
    let path = path.as_ref();
    let json = serde_json::to_string_pretty(data).expect("experiment data serializes");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Standard location for a figure's JSON dump: `<name>.json` in the
/// current directory (the harness is run from `results/`).
pub fn json_path(name: &str) -> String {
    format!("{name}.json")
}

/// Standard location for a figure's JSON-lines metric dump.
pub fn jsonl_path(name: &str) -> String {
    format!("{name}.metrics.jsonl")
}

/// Standard location for a figure's Prometheus-style text exposition.
pub fn prom_path(name: &str) -> String {
    format!("{name}.prom")
}

/// Write an `obs::expo` exposition to `<name>.prom` and return the path.
pub fn write_prom(name: &str, text: &str) -> String {
    let path = prom_path(name);
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote exposition to {path}");
    path
}

thread_local! {
    static METRICS_LOG: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Append one executor run's `obs` snapshot (and trace digest, when the
/// run captured one) to the pending metric log under the label `run`.
/// The run header carries the report's scheduler name, so logs from
/// different policies stay distinguishable when diffed.
pub fn record(run: &str, report: &runtime::RunReport) {
    let text = obs::jsonl::render_with_scheduler(
        run,
        Some(&report.scheduler),
        &report.metrics,
        report.trace.as_ref(),
    );
    METRICS_LOG.with(|log| log.borrow_mut().push_str(&text));
}

/// Append scalar results from an experiment that does not go through an
/// executor (roofline analysis, STREAM, NetPIPE): each `(name, value)`
/// becomes an `obs` counter under the label `run`.
pub fn record_scalars(run: &str, values: &[(&str, u64)]) {
    let metrics = obs::Metrics::new();
    for (name, value) in values {
        metrics.counter(name).add(*value);
    }
    let text = obs::jsonl::render(run, &metrics.snapshot(), None);
    METRICS_LOG.with(|log| log.borrow_mut().push_str(&text));
}

/// Take the accumulated metric log, leaving it empty.
pub fn drain_metrics() -> String {
    METRICS_LOG.with(|log| std::mem::take(&mut *log.borrow_mut()))
}

/// Flush the accumulated metric log to `<name>.metrics.jsonl` and return
/// the path. Writes an empty file if nothing was recorded, so a figure's
/// metric artifact always exists.
pub fn write_metrics(name: &str) -> String {
    let path = jsonl_path(name);
    let text = drain_metrics();
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote metrics to {path}");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_valid_json() {
        let dir = std::env::temp_dir().join("bench_report_test.json");
        write_json(&dir, &vec![1, 2, 3]);
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn json_path_format() {
        assert_eq!(json_path("fig7"), "fig7.json");
        assert_eq!(jsonl_path("fig7"), "fig7.metrics.jsonl");
        assert_eq!(prom_path("fig7"), "fig7.prom");
    }

    #[test]
    fn metric_log_accumulates_and_drains() {
        drain_metrics(); // isolate from other tests on this thread
        record_scalars("unit", &[("alpha", 3), ("beta", 5)]);
        record_scalars("unit2", &[("alpha", 1)]);
        let text = drain_metrics();
        let runs = obs::jsonl::parse(&text).expect("log parses");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, "unit");
        assert_eq!(runs[0].1.counter("alpha"), 3);
        assert_eq!(runs[0].1.counter("beta"), 5);
        assert_eq!(runs[1].1.counter("alpha"), 1);
        assert!(drain_metrics().is_empty(), "drain leaves the log empty");
    }

    #[test]
    fn executor_runs_land_in_the_log() {
        use runtime::{run, DtdBuilder, RunConfig};
        drain_metrics();
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        b.insert(0, 0.0, &[root]);
        let r = run(&b.build(), &RunConfig::shared_memory(2));
        record("dtd", &r);
        let text = drain_metrics();
        let runs = obs::jsonl::parse(&text).expect("log parses");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1.counter(obs::names::TASKS_EXECUTED), 2);
    }
}
