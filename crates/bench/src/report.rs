//! Result export: every experiment binary can drop its data as JSON next
//! to the human-readable table, for downstream plotting.

use serde::Serialize;
use std::path::Path;

/// Serialize `data` as pretty JSON into `path`. Panics on I/O failure —
/// the harness treats an unwritable results directory as fatal.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, data: &T) {
    let path = path.as_ref();
    let json = serde_json::to_string_pretty(data).expect("experiment data serializes");
    std::fs::write(path, json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Standard location for a figure's JSON dump: `<name>.json` in the
/// current directory (the harness is run from `results/`).
pub fn json_path(name: &str) -> String {
    format!("{name}.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_valid_json() {
        let dir = std::env::temp_dir().join("bench_report_test.json");
        write_json(&dir, &vec![1, 2, 3]);
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn json_path_format() {
        assert_eq!(json_path("fig7"), "fig7.json");
    }
}
