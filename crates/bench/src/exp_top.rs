//! `stencil-top`: a refreshing console view of a running stencil, fed by
//! the runtime's live telemetry board — per-worker occupancy over the
//! last sample window, queue depths, network traffic in flight, and the
//! tracer's own measured overhead.
//!
//! Two entry points back the binary:
//!
//! * [`run_once`] — the CI smoke: run the reference configuration on the
//!   deterministic simulator with sampling on, render the final frame,
//!   and report whether the tracer stayed inside its overhead budget
//!   with nothing dropped;
//! * [`live_run`] — build a single-node shared-memory stencil whose
//!   board the binary can watch while worker threads execute real
//!   kernels.

use ca_stencil::{build_base, kind_names, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::{Live, LiveSample, TracerOverhead};
use runtime::{Program, RunConfig};
use std::fmt::Write;

/// Width of the occupancy bar in a rendered frame.
const BAR: usize = 24;

/// Render one console frame from the freshest per-node samples (pass
/// `Live::latest_all()`), plus the overhead footer once the run measured
/// it.
pub fn render_frame(latest: &[LiveSample], overhead: Option<&TracerOverhead>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>7}  {:<BAR$} {:>6} {:>8} {:>9} {:>12} {:>7} {:>7} {:>7} {:>7}",
        "node",
        "occup",
        "lanes",
        "ready",
        "pending",
        "net msgs",
        "net bytes",
        "steals",
        "sfails",
        "spills",
        "dropped"
    );
    for s in latest {
        let occ = s.occupancy();
        let filled = ((occ * BAR as f64).round() as usize).min(BAR);
        let bar: String = "#".repeat(filled) + &".".repeat(BAR - filled);
        let _ = writeln!(
            out,
            "{:>4} {:>6.1}%  {bar} {:>6} {:>8} {:>9} {:>12} {:>7} {:>7} {:>7} {:>7}",
            s.node,
            100.0 * occ,
            s.ready_depth,
            s.pending_tasks,
            s.inflight_msgs,
            s.inflight_bytes,
            s.steals,
            s.steal_fails,
            s.overflow_pushes,
            s.dropped_events,
        );
    }
    if latest.is_empty() {
        let _ = writeln!(out, "  (no samples yet)");
    }
    if let Some(o) = overhead {
        let _ = writeln!(
            out,
            "tracer: {} events · {:.1} ns/event · {:.4} % of lane time (budget {:.0} %)",
            o.events,
            o.per_event_ns,
            100.0 * o.fraction(),
            100.0 * TracerOverhead::BUDGET_FRACTION,
        );
    }
    out
}

/// Everything the `--once` smoke needs to print and judge.
#[derive(Debug)]
pub struct TopOnce {
    /// The final rendered frame (one row per node, overhead footer).
    pub frame: String,
    /// Measured tracer self-overhead of the run.
    pub overhead: TracerOverhead,
    /// Spans lost to ring overflow (0 on a healthy run).
    pub dropped: u64,
    /// Live samples published over the run.
    pub samples: usize,
}

impl TopOnce {
    /// The smoke verdict: the run sampled, dropped nothing, and the
    /// tracer stayed inside [`TracerOverhead::BUDGET_FRACTION`].
    pub fn ok(&self) -> bool {
        self.samples > 0 && self.dropped == 0 && self.overhead.within_budget()
    }
}

/// Run the reference configuration (the `stencil-doctor` baseline
/// workload, base scheme) on the deterministic simulator with live
/// sampling, and render the final frame. Virtual-time cadence: 1 ms, so
/// even the ~13 ms reference run yields a dozen windows per node.
pub fn run_once() -> TopOnce {
    let profile = MachineProfile::nacl();
    let cfg = StencilConfig::new(Problem::laplace(4608), 288, 10, ProcessGrid::new(4, 4))
        .with_ratio(0.4)
        .with_profile(profile.clone());
    let program = build_base(&cfg, false).program;
    let live = Live::new();
    let report = runtime::run(
        &program,
        &RunConfig::simulated(profile, 16)
            .with_trace()
            .with_live(live.clone())
            .with_sampling(1_000_000)
            .with_kind_names(kind_names()),
    );
    let dropped = report.trace.as_ref().map_or(0, |t| t.dropped);
    TopOnce {
        frame: render_frame(&live.latest_all(), Some(&report.overhead)),
        overhead: report.overhead,
        dropped,
        samples: live.len(),
    }
}

/// A single-node shared-memory stencil sized for watching: real worker
/// threads, real kernels, a few seconds of wall time. Returns the
/// program, a config already wired to `live`, and the board to observe.
pub fn live_run(live: Live) -> (Program, RunConfig) {
    let profile = MachineProfile::nacl();
    let threads = profile.compute_threads();
    let cfg = StencilConfig::new(Problem::laplace(1536), 256, 24, ProcessGrid::new(1, 1))
        .with_ratio(0.4)
        .with_profile(profile);
    let program = build_base(&cfg, true).program;
    let run_cfg = RunConfig::shared_memory(threads as usize)
        .with_trace()
        .with_live(live)
        .with_kind_names(kind_names());
    (program, run_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, busy: Vec<f64>) -> LiveSample {
        LiveSample {
            t_ns: 1_000_000,
            window_ns: 1_000_000,
            node,
            lane_busy: busy,
            ready_depth: 3,
            pending_tasks: 17,
            inflight_msgs: 2,
            inflight_bytes: 4096,
            dropped_events: 0,
            steals: 12,
            steal_fails: 3,
            overflow_pushes: 1,
        }
    }

    #[test]
    fn frame_renders_one_row_per_node_plus_footer() {
        let overhead = TracerOverhead {
            events: 1000,
            per_event_ns: 20.0,
            total_ns: 20_000,
            lane_time_ns: 10_000_000,
        };
        let frame = render_frame(
            &[sample(0, vec![1.0, 1.0]), sample(1, vec![0.0, 1.0])],
            Some(&overhead),
        );
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines.len(), 4, "{frame}");
        assert!(lines[0].contains("steals"), "{frame}");
        assert!(lines[1].contains("100.0%"), "{frame}");
        assert!(lines[2].contains("50.0%"), "{frame}");
        assert!(lines[3].contains("budget 2 %"), "{frame}");
        // The steal columns render the sample's counters in order.
        assert!(lines[1].contains("12       3       1"), "{frame}");

        let empty = render_frame(&[], None);
        assert!(empty.contains("no samples yet"));
    }

    #[test]
    fn once_smoke_passes_its_own_budget() {
        let once = run_once();
        assert!(once.ok(), "{once:?}\n{}", once.frame);
        // One row per simulated node made it into the final frame.
        assert_eq!(once.frame.lines().count(), 18, "{}", once.frame);
    }
}
