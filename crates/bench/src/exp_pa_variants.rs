//! PA1 vs PA2: the trade-off the paper describes in Section III-C but
//! measures only half of. PA1 (the paper's implementation) performs
//! redundant halo work every quiet iteration and overlaps freely; PA2
//! performs no redundant flops but serializes a catch-up bulge behind each
//! exchange message. Same remote traffic either way.

use crate::{iterations, paper_workload};
use ca_stencil::{build_base, build_ca, build_pa2, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use serde::Serialize;

/// One (ratio) comparison row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PaPoint {
    /// Kernel adjustment ratio.
    pub ratio: f64,
    /// Base makespan, seconds.
    pub base: f64,
    /// PA1 (the paper's CA) makespan, seconds.
    pub pa1: f64,
    /// PA2 skeleton makespan, seconds.
    pub pa2: f64,
}

/// One (machine, node count) panel.
#[derive(Debug, Clone, Serialize)]
pub struct PaPanel {
    /// System name.
    pub system: String,
    /// Node count.
    pub nodes: u32,
    /// Step size used.
    pub steps: usize,
    /// The sweep.
    pub points: Vec<PaPoint>,
}

/// Run one panel. The paper's s = 15 exceeds PA2's `tile/2` bound only
/// for tiny tiles; both paper tiles (288, 864) admit it.
pub fn run_panel(profile: &MachineProfile, nodes: u32, ratios: &[f64]) -> PaPanel {
    let (n, tile) = paper_workload(profile);
    let steps = 15usize;
    let points = ratios
        .iter()
        .map(|&ratio| {
            let cfg = StencilConfig::new(
                Problem::laplace(n),
                tile,
                iterations(),
                ProcessGrid::square(nodes),
            )
            .with_steps(steps)
            .with_ratio(ratio)
            .with_profile(profile.clone());
            let sim = RunConfig::simulated(profile.clone(), nodes);
            let label = format!("{}/{}n/r{:.1}", profile.name, nodes, ratio);
            let base = run(&build_base(&cfg, false).program, &sim);
            let pa1 = run(&build_ca(&cfg, false).program, &sim);
            let pa2 = run(&build_pa2(&cfg, false).program, &sim);
            crate::report::record(&format!("{label}/base"), &base);
            crate::report::record(&format!("{label}/pa1"), &pa1);
            crate::report::record(&format!("{label}/pa2"), &pa2);
            PaPoint {
                ratio,
                base: base.makespan,
                pa1: pa1.makespan,
                pa2: pa2.makespan,
            }
        })
        .collect();
    PaPanel {
        system: profile.name.clone(),
        nodes,
        steps,
        points,
    }
}

/// Print panels.
pub fn print(panels: &[PaPanel]) {
    println!(
        "PA1 vs PA2 (s = {}; same remote traffic, different work/overlap)",
        panels[0].steps
    );
    for p in panels {
        println!("-- {} / {} nodes", p.system, p.nodes);
        println!(
            "{:>7} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "ratio", "base (s)", "PA1 (s)", "PA2 (s)", "PA1 gain", "PA2 gain"
        );
        for pt in &p.points {
            println!(
                "{:>7.1} {:>11.3} {:>11.3} {:>11.3} {:>10.1}% {:>10.1}%",
                pt.ratio,
                pt.base,
                pt.pa1,
                pt.pa2,
                100.0 * (pt.base / pt.pa1 - 1.0),
                100.0 * (pt.base / pt.pa2 - 1.0),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_beat_base_when_comm_bound() {
        std::env::set_var("REPRO_FAST", "1");
        let p = run_panel(&MachineProfile::nacl(), 16, &[0.3]);
        let pt = &p.points[0];
        assert!(pt.pa1 < pt.base, "{pt:?}");
        assert!(pt.pa2 < pt.base, "{pt:?}");
    }

    #[test]
    fn pa2_catchup_limits_overlap_relative_to_pa1_at_full_kernel() {
        // at ratio 1.0 on few nodes, PA1's redundant work is cheap and
        // fully overlapped; PA2's serial bulge lengthens the critical path
        std::env::set_var("REPRO_FAST", "1");
        let p = run_panel(&MachineProfile::nacl(), 4, &[1.0]);
        let pt = &p.points[0];
        assert!(
            pt.pa2 > pt.pa1 * 0.95,
            "expected PA2 not to beat PA1 clearly at full kernel: {pt:?}"
        );
    }
}
