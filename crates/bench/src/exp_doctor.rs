//! `stencil-doctor`: trace-driven diagnosis of a stencil run, plus the
//! bench regression baseline it writes and checks.
//!
//! For each scheme (base and CA) on one deterministic simulated
//! configuration, the doctor unfolds the task graph once, runs the
//! simulated executor with tracing, and feeds both to
//! [`insight::diagnose`]: idle-gap attribution (comm-wait vs
//! dependency-wait vs starvation), the realized critical path against the
//! static makespan lower bound, per-kind duration digests, and a step-size
//! recommendation. The same scalars feed [`insight::Baseline`] for the
//! `--baseline` / `--check` regression workflow wired into `ci.sh`.

use crate::statics::{self, StaticCols};
use analyze::AnalyzeConfig;
use ca_stencil::{build_base, build_ca, kind_names, Problem, StencilConfig, KIND_BOUNDARY};
use insight::{advise_step, Baseline, RunDiagnosis, SchemeBaseline, StarvationSplit, StepAdvice};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::{names, LiveSample, TracerOverhead};
use runtime::RunConfig;

/// The doctor's run parameters (mirrors `stencil-lint`'s flags).
#[derive(Debug, Clone)]
pub struct DoctorConfig {
    /// Grid edge length.
    pub n: usize,
    /// Tile edge length.
    pub tile: usize,
    /// Jacobi iterations.
    pub iters: u32,
    /// CA step size `s`.
    pub steps: usize,
    /// Process grid edge (`grid × grid` nodes).
    pub grid: u32,
    /// Kernel adjustment ratio (Figures 8–10 use 0.4).
    pub ratio: f64,
}

impl Default for DoctorConfig {
    /// The committed-baseline configuration: small enough to simulate in
    /// seconds, large enough that base pays visible comm-wait. The
    /// simulated executor is deterministic, so these numbers are exactly
    /// reproducible.
    fn default() -> Self {
        DoctorConfig {
            n: 4608,
            tile: 288,
            iters: 10,
            steps: 5,
            grid: 4,
            ratio: 0.4,
        }
    }
}

impl DoctorConfig {
    /// The config-identity string stored in the baseline file.
    pub fn describe(&self) -> String {
        format!(
            "n={} tile={} iters={} steps={} grid={}x{} ratio={} profile=NaCL",
            self.n, self.tile, self.iters, self.steps, self.grid, self.grid, self.ratio
        )
    }
}

/// One scheme's measured-and-diagnosed outcome.
#[derive(Debug)]
pub struct DoctorScheme {
    /// Scheme name (`base` or `ca`).
    pub name: String,
    /// Active scheduler name (`runtime::RunReport::scheduler`). Printed
    /// in the report header; deliberately *not* part of the regression
    /// baseline, whose scalars identify the run by config alone.
    pub scheduler: String,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Useful GFLOP/s (nominal flops over makespan, as the paper counts).
    pub gflops: f64,
    /// Static predictions for the same program.
    pub cols: StaticCols,
    /// Measured cross-node bytes.
    pub bytes: u64,
    /// Exact median boundary-kernel duration, milliseconds — the paper's
    /// Figure 10 metric (136 ms base vs 153 ms CA on NaCL).
    pub median_kernel_ms: f64,
    /// The full diagnosis.
    pub diagnosis: RunDiagnosis,
    /// Step-size recommendation from the measured symptoms.
    pub advice: StepAdvice,
    /// Tracer self-overhead of the run (streaming telemetry enabled):
    /// record attempts times the calibrated per-event cost over total
    /// worker-lane time.
    pub overhead: TracerOverhead,
    /// Live samples the runtime published while the run executed.
    pub samples: Vec<LiveSample>,
}

impl DoctorScheme {
    /// Achieved makespan over the static lower bound (must be ≥ 1).
    pub fn bound_ratio(&self) -> f64 {
        self.makespan_s / self.cols.makespan_bound
    }

    /// The scalars the regression baseline records.
    pub fn to_baseline(&self) -> SchemeBaseline {
        SchemeBaseline {
            makespan_s: self.makespan_s,
            gflops: self.gflops,
            occupancy: self.diagnosis.occupancy(),
            comm_wait_fraction: self.diagnosis.totals.comm_wait_fraction(),
            median_kernel_ms: self.median_kernel_ms,
            messages: self.cols.messages,
            bytes: self.bytes,
            redundant_flops: self.cols.redundant_flops,
        }
    }
}

/// Both schemes diagnosed on one configuration.
#[derive(Debug)]
pub struct DoctorRun {
    /// The run parameters.
    pub config: DoctorConfig,
    /// Worker lanes per node.
    pub lanes: u32,
    /// Per-scheme outcomes, `base` first.
    pub schemes: Vec<DoctorScheme>,
}

impl DoctorRun {
    /// Assemble the regression baseline from this run.
    pub fn baseline(&self) -> Baseline {
        Baseline {
            config: self.config.describe(),
            schemes: self
                .schemes
                .iter()
                .map(|s| (s.name.clone(), s.to_baseline()))
                .collect(),
        }
    }
}

/// Run and diagnose both schemes on the deterministic simulated executor.
pub fn run(dc: &DoctorConfig) -> DoctorRun {
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    let nodes = dc.grid * dc.grid;
    let cfg = StencilConfig::new(
        Problem::laplace(dc.n),
        dc.tile,
        dc.iters,
        ProcessGrid::new(dc.grid, dc.grid),
    )
    .with_steps(dc.steps)
    .with_ratio(dc.ratio)
    .with_profile(profile.clone());

    let mut schemes = Vec::new();
    for (name, program) in [
        ("base", build_base(&cfg, false).program),
        ("ca", build_ca(&cfg, false).program),
    ] {
        let acfg = AnalyzeConfig::new().with_lanes(lanes).without_races();
        let dag = analyze::unfold(&program, &acfg);
        let cols = statics::predict_dag(&dag, lanes);

        // Streaming telemetry on the reference config: sampling reads
        // state only, so the virtual-time results are bit-identical to a
        // sampling-off run (the baseline below stays valid), while the
        // doctor additionally measures the tracer's own overhead.
        let report = runtime::run(
            &program,
            &RunConfig::simulated(profile.clone(), nodes)
                .with_trace()
                .with_sampling(RunConfig::DEFAULT_SAMPLE_PERIOD_NS)
                .with_kind_names(kind_names()),
        );
        let trace = report.trace.as_ref().expect("trace requested");
        let diagnosis = insight::diagnose(trace, &dag, lanes);

        // Exact (not log-bucketed) median: the CA-vs-base kernel
        // slowdown can be a few percent, below the histogram's
        // resolution, and the regression baseline wants the true value.
        let mut boundary: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.kind == KIND_BOUNDARY)
            .map(|s| s.duration_ns())
            .collect();
        let median_kernel_ms = if boundary.is_empty() {
            0.0
        } else {
            let mid = boundary.len() / 2;
            let (_, &mut m, _) = boundary.select_nth_unstable(mid);
            m as f64 / 1e6
        };

        // Redundant work relative to all work actually executed, the
        // advisor's counterweight to the measured comm-wait fraction.
        let total_flops = cols.redundant_flops as f64 + cfg.nominal_flops();
        let redundant_fraction = cols.redundant_flops as f64 / total_flops;
        let advice = advise_step(
            dc.steps as u32,
            dc.iters,
            diagnosis.totals.comm_wait_fraction(),
            redundant_fraction,
        );

        schemes.push(DoctorScheme {
            name: name.to_string(),
            scheduler: report.scheduler.clone(),
            makespan_s: report.makespan,
            gflops: cfg.gflops(report.makespan),
            cols,
            bytes: report.remote_bytes(),
            median_kernel_ms,
            diagnosis,
            advice,
            overhead: report.overhead,
            samples: report.samples,
        });
    }
    DoctorRun {
        config: dc.clone(),
        lanes,
        schemes,
    }
}

/// Measured outcome of the real shared-memory occupancy probe (see
/// [`measure_real_occupancy`]).
#[derive(Debug)]
pub struct RealOccupancy {
    /// Worker threads the probe ran with.
    pub threads: usize,
    /// Worker-lane occupancy over the run's makespan, from the recorded
    /// spans — directly comparable to the simulated baselines' occupancy
    /// scalars in `BENCH_stencil.json`.
    pub occupancy: f64,
    /// Tasks obtained by stealing from a peer worker's deque.
    pub steals: u64,
    /// Full steal sweeps that found no work anywhere.
    pub steal_fails: u64,
    /// Local-deque overflows spilled to the shared injector queue.
    pub overflow_pushes: u64,
    /// Idle-time split from the run's live samples: truly-no-work vs
    /// ready-work-undelivered.
    pub starvation: StarvationSplit,
}

/// Run the base scheme with real kernel bodies on the work-stealing
/// shared-memory executor and measure its worker occupancy. This is the
/// `--check` occupancy gate: the work-stealing dispatch loop must keep
/// real lanes busier than the *simulated* reference baselines
/// (base ≈ 0.16, CA ≈ 0.28 on the committed configuration), otherwise
/// the executor overhaul regressed. Single node, so the probe exercises
/// exactly the deque/steal/overflow path with no network in the way.
pub fn measure_real_occupancy() -> RealOccupancy {
    let profile = MachineProfile::nacl();
    let threads = 4usize;
    let cfg = StencilConfig::new(Problem::laplace(1024), 256, 8, ProcessGrid::new(1, 1))
        .with_ratio(0.4)
        .with_profile(profile);
    let program = build_base(&cfg, true).program;
    let report = runtime::run(
        &program,
        &RunConfig::shared_memory(threads)
            .with_trace()
            .with_sampling(RunConfig::DEFAULT_SAMPLE_PERIOD_NS)
            .with_kind_names(kind_names()),
    );
    RealOccupancy {
        threads,
        occupancy: report.node_occupancy.first().copied().unwrap_or(0.0),
        steals: report.counter(names::STEALS),
        steal_fails: report.counter(names::STEAL_FAILS),
        overflow_pushes: report.counter(names::OVERFLOW_PUSHES),
        starvation: insight::split_starvation(&report.samples),
    }
}

/// Probe attempts [`probe_occupancy_above`] makes before giving up.
pub const OCCUPANCY_PROBE_ATTEMPTS: usize = 5;

/// Best-of-N occupancy probe: rerun [`measure_real_occupancy`] up to
/// `attempts` times, returning the highest-occupancy probe and stopping
/// early once it exceeds `target`. Wall-clock occupancy on a time-shared
/// host is noisy (the OS may deschedule the probe's workers for
/// unrelated load), and the gate's question is whether the dispatch loop
/// *can* keep lanes busier than the simulated baselines — a capability,
/// measured as the best of a few runs rather than one arbitrary sample.
pub fn probe_occupancy_above(target: f64, attempts: usize) -> RealOccupancy {
    let mut best: Option<RealOccupancy> = None;
    for attempt in 0..attempts.max(1) {
        let probe = measure_real_occupancy();
        let improved = match &best {
            Some(b) => probe.occupancy > b.occupancy,
            None => true,
        };
        if improved {
            best = Some(probe);
        }
        let current = best.as_ref().expect("set above");
        if current.occupancy > target {
            break;
        }
        eprintln!(
            "occupancy probe attempt {}: best {:.4} <= target {:.4}, retrying",
            attempt + 1,
            current.occupancy,
            target
        );
    }
    best.expect("at least one attempt runs")
}

/// Print the full diagnosis report for every scheme.
pub fn print(run: &DoctorRun) {
    println!(
        "stencil-doctor: {} ({} lanes/node)",
        run.config.describe(),
        run.lanes
    );
    for s in &run.schemes {
        println!("\n=== {} (scheduler {}) ===", s.name, s.scheduler);
        print!("{}", s.diagnosis.render());
        println!(
            "static: {} messages, {} redundant flops, bound {:.6} s → achieved/bound {:.3}",
            s.cols.messages,
            s.cols.redundant_flops,
            s.cols.makespan_bound,
            s.bound_ratio()
        );
        println!("useful throughput: {:.1} GFLOP/s", s.gflops);
        println!(
            "tracer: {} events at {:.1} ns each → {:.4} % of lane time (budget {:.0} %), {} live samples",
            s.overhead.events,
            s.overhead.per_event_ns,
            100.0 * s.overhead.fraction(),
            100.0 * TracerOverhead::BUDGET_FRACTION,
            s.samples.len()
        );
        println!("advice: {}", s.advice.reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight::Tolerance;

    /// The acceptance story of Figure 10, reproduced on the baseline
    /// configuration: CA wins on occupancy while its median kernel is
    /// *slower*, and no scheme beats the static lower bound.
    #[test]
    fn doctor_reproduces_fig10_shape() {
        let r = run(&DoctorConfig::default());
        let base = &r.schemes[0];
        let ca = &r.schemes[1];
        for s in &r.schemes {
            assert_eq!(s.scheduler, "fifo", "baseline runs use the default policy");
        }
        assert!(
            ca.diagnosis.occupancy() > base.diagnosis.occupancy(),
            "CA occupancy {} vs base {}",
            ca.diagnosis.occupancy(),
            base.diagnosis.occupancy()
        );
        assert!(
            ca.median_kernel_ms > base.median_kernel_ms,
            "CA median kernel {} ms vs base {} ms",
            ca.median_kernel_ms,
            base.median_kernel_ms
        );
        assert!(ca.makespan_s < base.makespan_s);
        for s in &r.schemes {
            assert!(
                s.bound_ratio() >= 1.0 - 1e-9,
                "{}: achieved {} s below static bound {} s",
                s.name,
                s.makespan_s,
                s.cols.makespan_bound
            );
        }
        // Base pays a material share of its lane-time in comm-wait — the
        // symptom the CA scheme exists to treat — and treats it by
        // sending roughly half the messages, cutting absolute comm-wait
        // lane-time. (The comm-wait *fraction* can rise for CA because
        // its makespan denominator shrinks faster.)
        assert!(base.diagnosis.totals.comm_wait_fraction() > 0.05);
        assert!(ca.cols.messages < base.cols.messages);
        assert!(ca.diagnosis.totals.comm_wait_ns < base.diagnosis.totals.comm_wait_ns);
        // Only the CA scheme pays redundant flops.
        assert_eq!(base.cols.redundant_flops, 0);
        assert!(ca.cols.redundant_flops > 0);
    }

    /// With streaming telemetry on the reference configuration, the
    /// tracer's measured self-overhead stays inside its 2 % budget, the
    /// runtime publishes live samples, and nothing is dropped on the
    /// span rings.
    #[test]
    fn reference_run_keeps_tracer_overhead_inside_budget() {
        let r = run(&DoctorConfig::default());
        for s in &r.schemes {
            assert!(s.overhead.events > 0, "{}: no events accounted", s.name);
            assert!(
                s.overhead.within_budget(),
                "{}: tracer overhead {:.4} % exceeds {:.0} % budget ({:?})",
                s.name,
                100.0 * s.overhead.fraction(),
                100.0 * TracerOverhead::BUDGET_FRACTION,
                s.overhead
            );
            assert!(!s.samples.is_empty(), "{}: no live samples", s.name);
            assert_eq!(s.diagnosis.dropped_events, 0, "{}", s.name);
        }
    }

    /// The work-stealing occupancy gate: a real shared-memory run of the
    /// base scheme (kernel bodies on) keeps its lanes busier than either
    /// simulated reference baseline, and its steal counters reach the
    /// metric registry. Best-of-N: wall-clock occupancy is load-noisy.
    #[test]
    fn real_run_occupancy_beats_the_simulated_baselines() {
        let real = probe_occupancy_above(0.28, OCCUPANCY_PROBE_ATTEMPTS);
        assert!(
            real.occupancy > 0.28,
            "real occupancy {:.4} not above the committed simulated baselines \
             (base 0.16, ca 0.28): {real:?}",
            real.occupancy
        );
        // Steal activity is workload-dependent, but the counters must be
        // wired: a 4-worker run always performs failed sweeps at drain.
        assert!(real.steal_fails > 0, "{real:?}");
    }

    /// The baseline written by one run checks clean against a rerun
    /// (determinism), and a perturbed scalar fails the check.
    #[test]
    fn baseline_round_trip_and_perturbation() {
        let r = run(&DoctorConfig::default());
        let b = r.baseline();
        let parsed = Baseline::from_json(&b.to_json()).unwrap();
        assert!(parsed.compare(&b, &Tolerance::default()).is_empty());

        let mut bad = b.clone();
        bad.schemes.get_mut("ca").unwrap().makespan_s *= 1.10;
        assert!(!parsed.compare(&bad, &Tolerance::default()).is_empty());
    }
}
