//! `stencil-whatif`: causal what-if profiling of a stencil run, validated
//! against actual simulator re-runs.
//!
//! [`insight::WhatIf`] replays the realized DAG of a traced run under
//! perturbed costs — faster kernels, a fatter or lower-latency fabric, a
//! slower message-injection rate — and predicts the end-to-end makespan
//! effect (the Coz "virtual speedup" idea). Predictions are only worth
//! ranking if the replay is honest, so this experiment closes the loop:
//! for a subset of scenarios it *actually re-runs the simulator* with the
//! equivalent cost change applied for real (a cost-scaled task class, a
//! scaled machine-profile network, a doubled per-message runtime cost)
//! and reports the prediction error. The committed `BENCH_whatif.json`
//! records both numbers per scenario and the agreement band the errors
//! must stay inside.

use analyze::AnalyzeConfig;
use ca_stencil::{build_base, kind_names, Problem, StencilConfig, KIND_BOUNDARY, KIND_INTERIOR};
use insight::{Perturbation, Prediction, WhatIf};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{
    ClassId, FlowData, OutputDep, Params, Program, ReadRegion, RunConfig, TaskClass, TaskGraph,
    WriteRegion,
};
use serde::{Number, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The what-if experiment's run parameters.
#[derive(Debug, Clone)]
pub struct WhatIfConfig {
    /// Grid edge length.
    pub n: usize,
    /// Tile edge length.
    pub tile: usize,
    /// Jacobi iterations.
    pub iters: u32,
    /// Process grid edge (`grid × grid` nodes).
    pub grid: u32,
    /// Kernel adjustment ratio (Figures 8–10 use 0.4).
    pub ratio: f64,
}

impl Default for WhatIfConfig {
    /// The committed-baseline configuration: the base scheme on a 2×2
    /// node grid, small enough that the five simulator re-runs finish in
    /// seconds, comm-heavy enough that network scenarios move the
    /// makespan. Deterministic (simulated executor), so exactly
    /// reproducible.
    fn default() -> Self {
        WhatIfConfig {
            n: 2304,
            tile: 288,
            iters: 8,
            grid: 2,
            ratio: 0.4,
        }
    }
}

impl WhatIfConfig {
    /// The config-identity string stored in the baseline file.
    pub fn describe(&self) -> String {
        format!(
            "base n={} tile={} iters={} grid={}x{} ratio={} profile=NaCL",
            self.n, self.tile, self.iters, self.grid, self.grid, self.ratio
        )
    }
}

/// A task class that delegates to an existing registered class but scales
/// [`TaskClass::cost`] by `factor` for tasks of one trace kind — how the
/// validation harness makes "the boundary kernel is 30 % faster" *true*
/// in a re-run rather than hypothesized in a replay.
struct ScaledKind {
    inner: Arc<TaskGraph>,
    id: ClassId,
    kind: u32,
    factor: f64,
}

impl ScaledKind {
    fn class(&self) -> &dyn TaskClass {
        self.inner.class(self.id)
    }
}

impl TaskClass for ScaledKind {
    fn name(&self) -> &str {
        self.class().name()
    }
    fn node_of(&self, p: Params) -> netsim::NodeId {
        self.class().node_of(p)
    }
    fn activation_count(&self, p: Params) -> usize {
        self.class().activation_count(p)
    }
    fn num_input_slots(&self, p: Params) -> usize {
        self.class().num_input_slots(p)
    }
    fn num_output_flows(&self, p: Params) -> usize {
        self.class().num_output_flows(p)
    }
    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.class().outputs(p)
    }
    fn execute(&self, p: Params, inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        self.class().execute(p, inputs)
    }
    fn output_bytes(&self, p: Params, flow: usize) -> usize {
        self.class().output_bytes(p, flow)
    }
    fn cost(&self, p: Params) -> f64 {
        let c = self.class();
        // Resolve the effective trace kind the way TaskGraph::kind_of
        // does: a class that leaves kind() at the MAX sentinel is tagged
        // by its class id.
        let k = c.kind(p);
        let k = if k == u32::MAX { self.id as u32 } else { k };
        let f = if k == self.kind { self.factor } else { 1.0 };
        c.cost(p) * f
    }
    fn kind(&self, p: Params) -> u32 {
        self.class().kind(p)
    }
    fn priority(&self, p: Params) -> i32 {
        self.class().priority(p)
    }
    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        self.class().write_region(p)
    }
    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        self.class().read_region(p)
    }
    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        self.class().delivered_region(p, flow)
    }
    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        self.class().pinned_region(p)
    }
    fn flops(&self, p: Params) -> f64 {
        self.class().flops(p)
    }
    fn redundant_flops(&self, p: Params) -> u64 {
        self.class().redundant_flops(p)
    }
}

/// Rebuild `program` with every class wrapped so tasks of trace `kind`
/// cost `factor ×` their original service time. Class ids, roots, and the
/// task count are preserved, so the same unfolded DAG describes both.
pub fn scale_kind_cost(program: &Program, kind: u32, factor: f64) -> Program {
    let mut graph = TaskGraph::new();
    for id in 0..program.graph.num_classes() {
        graph.add_class(Arc::new(ScaledKind {
            inner: Arc::clone(&program.graph),
            id: id as ClassId,
            kind,
            factor,
        }));
    }
    Program {
        graph: Arc::new(graph),
        roots: program.roots.clone(),
        total_tasks: program.total_tasks,
    }
}

/// One scenario's prediction, joined (when validated) with the makespan an
/// actual simulator re-run produced under the equivalent real change.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Human-readable scenario label.
    pub label: String,
    /// Replay prediction under the perturbation.
    pub prediction: Prediction,
    /// Predicted speedup vs the baseline replay.
    pub speedup: f64,
    /// Makespan of the validating re-run, seconds (`None` for
    /// prediction-only scenarios).
    pub actual_s: Option<f64>,
}

impl ScenarioOutcome {
    /// Relative prediction error against the validating re-run.
    pub fn rel_err(&self) -> Option<f64> {
        self.actual_s
            .map(|a| (self.prediction.makespan_s - a).abs() / a)
    }
}

/// The full what-if experiment: traced run, baseline replay, ranked
/// scenarios with validation re-runs.
#[derive(Debug)]
pub struct WhatIfRun {
    /// The run parameters.
    pub config: WhatIfConfig,
    /// Makespan of the traced run the replay is anchored to, seconds.
    pub actual_makespan_s: f64,
    /// The unperturbed replay (model fidelity anchor).
    pub replay: Prediction,
    /// Scenarios ranked by predicted speedup, largest first.
    pub scenarios: Vec<ScenarioOutcome>,
}

impl WhatIfRun {
    /// Relative error of the unperturbed replay against the traced run.
    pub fn replay_rel_err(&self) -> f64 {
        (self.replay.makespan_s - self.actual_makespan_s).abs() / self.actual_makespan_s
    }

    /// Assemble the committed baseline from this run.
    pub fn baseline(&self) -> WhatIfBaseline {
        WhatIfBaseline {
            config: self.config.describe(),
            agreement_band: AGREEMENT_BAND,
            actual_makespan_s: self.actual_makespan_s,
            replay_s: self.replay.makespan_s,
            scenarios: self
                .scenarios
                .iter()
                .map(|s| {
                    (
                        s.label.clone(),
                        ScenarioBaseline {
                            predicted_s: s.prediction.makespan_s,
                            actual_s: s.actual_s,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Maximum relative error a validated prediction may show against its
/// re-run — the committed agreement band of `BENCH_whatif.json`.
pub const AGREEMENT_BAND: f64 = 0.10;

/// Run the experiment: trace the base scheme on the simulator, build the
/// replay context, rank the scenario portfolio, and validate the network,
/// injection, and kernel scenarios against actual re-runs.
pub fn run(wc: &WhatIfConfig) -> WhatIfRun {
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    let nodes = wc.grid * wc.grid;
    let cfg = StencilConfig::new(
        Problem::laplace(wc.n),
        wc.tile,
        wc.iters,
        ProcessGrid::new(wc.grid, wc.grid),
    )
    .with_ratio(wc.ratio)
    .with_profile(profile.clone());
    let program = build_base(&cfg, false).program;
    let acfg = AnalyzeConfig::new().with_lanes(lanes).without_races();
    let dag = analyze::unfold(&program, &acfg);

    let sim = |program: &Program, profile: MachineProfile| {
        runtime::run(
            program,
            &RunConfig::simulated(profile, nodes)
                .with_trace()
                .with_kind_names(kind_names()),
        )
    };
    let report = sim(&program, profile.clone());
    let trace = report.trace.as_ref().expect("trace requested");
    let w = WhatIf::new(trace, &dag, &profile, nodes);
    let replay = w.baseline();

    let every_node_half_rate: Vec<Perturbation> = (0..nodes)
        .map(|node| Perturbation::Injection { node, factor: 0.5 })
        .collect();
    let portfolio: Vec<(String, Vec<Perturbation>)> = vec![
        (
            "boundary kernel 30% faster".into(),
            vec![Perturbation::TaskKind {
                kind: KIND_BOUNDARY,
                factor: 0.7,
            }],
        ),
        (
            "interior kernel 30% faster".into(),
            vec![Perturbation::TaskKind {
                kind: KIND_INTERIOR,
                factor: 0.7,
            }],
        ),
        (
            "network bandwidth 2x".into(),
            vec![Perturbation::Link {
                bandwidth: 2.0,
                latency: 1.0,
            }],
        ),
        (
            "network latency halved".into(),
            vec![Perturbation::Link {
                bandwidth: 1.0,
                latency: 0.5,
            }],
        ),
        ("comm injection half rate".into(), every_node_half_rate),
    ];
    let ranked = w.rank(&portfolio);

    // Validation re-runs: make each hypothetical change *real* and let
    // the simulator disagree if it can. Task costs are baked into the
    // classes at build time, so editing the profile's network fields
    // perturbs exactly what the replay's Link/Injection scenarios do.
    let mut actual: BTreeMap<String, f64> = BTreeMap::new();
    let scaled = scale_kind_cost(&program, KIND_BOUNDARY, 0.7);
    actual.insert(
        "boundary kernel 30% faster".into(),
        sim(&scaled, profile.clone()).makespan,
    );
    let mut fat = profile.clone();
    fat.net_eff_bw_bits *= 2.0;
    fat.net_peak_bw_bits *= 2.0;
    actual.insert("network bandwidth 2x".into(), sim(&program, fat).makespan);
    let mut low = profile.clone();
    low.net_latency *= 0.5;
    actual.insert("network latency halved".into(), sim(&program, low).makespan);
    let mut slow = profile.clone();
    slow.runtime_msg_cost *= 2.0;
    actual.insert(
        "comm injection half rate".into(),
        sim(&program, slow).makespan,
    );

    WhatIfRun {
        config: wc.clone(),
        actual_makespan_s: report.makespan,
        replay,
        scenarios: ranked
            .into_iter()
            .map(|r| ScenarioOutcome {
                actual_s: actual.get(&r.label).copied(),
                label: r.label,
                prediction: r.prediction,
                speedup: r.speedup,
            })
            .collect(),
    }
}

/// Print the ranked "what to optimize next" table with validation notes.
pub fn print(run: &WhatIfRun) {
    println!("stencil-whatif: {}", run.config.describe());
    println!(
        "traced makespan {:.6} s · baseline replay {:.6} s ({:+.2} % model error)",
        run.actual_makespan_s,
        run.replay.makespan_s,
        100.0 * (run.replay.makespan_s - run.actual_makespan_s) / run.actual_makespan_s
    );
    println!("\nwhat to optimize next (ranked by predicted end-to-end speedup):");
    println!("  scenario                        predicted s   speedup   occupancy   validated");
    for s in &run.scenarios {
        let validated = match (s.actual_s, s.rel_err()) {
            (Some(a), Some(e)) => format!("re-run {:.6} s ({:+.2} % err)", a, 100.0 * e),
            _ => "—".to_string(),
        };
        println!(
            "  {:<30} {:>12.6} {:>9.3} {:>11.3}   {}",
            s.label, s.prediction.makespan_s, s.speedup, s.prediction.occupancy, validated
        );
    }
}

/// One scenario's committed numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBaseline {
    /// Replay-predicted makespan, seconds.
    pub predicted_s: f64,
    /// Validating re-run makespan, seconds (absent for prediction-only
    /// scenarios).
    pub actual_s: Option<f64>,
}

/// The committed `BENCH_whatif.json` contents.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfBaseline {
    /// Config-identity string; compared verbatim.
    pub config: String,
    /// Maximum allowed relative error between a validated prediction and
    /// its re-run.
    pub agreement_band: f64,
    /// Traced-run makespan, seconds.
    pub actual_makespan_s: f64,
    /// Unperturbed-replay makespan, seconds.
    pub replay_s: f64,
    /// Scenario label → committed numbers.
    pub scenarios: BTreeMap<String, ScenarioBaseline>,
}

fn num(v: f64) -> Value {
    Value::Num(Number::F(v))
}

impl WhatIfBaseline {
    /// Serialize to the committed pretty-printed JSON format.
    pub fn to_json(&self) -> String {
        let scenarios = self
            .scenarios
            .iter()
            .map(|(label, s)| {
                let mut fields = vec![("predicted_s".to_string(), num(s.predicted_s))];
                if let Some(a) = s.actual_s {
                    fields.push(("actual_s".into(), num(a)));
                }
                (label.clone(), Value::Object(fields))
            })
            .collect();
        let v = Value::Object(vec![
            ("config".into(), Value::Str(self.config.clone())),
            ("agreement_band".into(), num(self.agreement_band)),
            ("actual_makespan_s".into(), num(self.actual_makespan_s)),
            ("replay_s".into(), num(self.replay_s)),
            ("scenarios".into(), Value::Object(scenarios)),
        ]);
        let mut text = serde_json::to_string_pretty(&v).expect("baseline serialization");
        text.push('\n');
        text
    }

    /// Parse the committed JSON format back.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("whatif baseline: {e}"))?;
        let f = |name: &str| {
            v.field(name)
                .as_f64()
                .ok_or_else(|| format!("baseline field {name} missing or not a number"))
        };
        let config = v
            .field("config")
            .as_str()
            .ok_or("baseline missing config string")?
            .to_string();
        let Value::Object(pairs) = v.field("scenarios") else {
            return Err("baseline missing scenarios object".into());
        };
        let mut scenarios = BTreeMap::new();
        for (label, sv) in pairs {
            let predicted_s = sv
                .field("predicted_s")
                .as_f64()
                .ok_or_else(|| format!("scenario {label}: predicted_s missing"))?;
            scenarios.insert(
                label.clone(),
                ScenarioBaseline {
                    predicted_s,
                    actual_s: sv.field("actual_s").as_f64(),
                },
            );
        }
        Ok(WhatIfBaseline {
            config,
            agreement_band: f("agreement_band")?,
            actual_makespan_s: f("actual_makespan_s")?,
            replay_s: f("replay_s")?,
            scenarios,
        })
    }

    /// Diff `current` against this committed baseline. Returns one line
    /// per violation: scalar drift beyond `rel_band` (the runs are
    /// deterministic, so the band only absorbs cost-model evolution small
    /// enough to re-baseline consciously), scenario-set changes, and —
    /// the point of the file — any validated prediction whose error
    /// against its re-run exceeds the committed agreement band.
    pub fn compare(&self, current: &WhatIfBaseline, rel_band: f64) -> Vec<String> {
        let mut bad = Vec::new();
        if self.config != current.config {
            bad.push(format!(
                "config mismatch: baseline \"{}\" vs current \"{}\"",
                self.config, current.config
            ));
            return bad;
        }
        let rel = |bad: &mut Vec<String>, name: &str, b: f64, c: f64| {
            if (c - b).abs() > rel_band * b.abs().max(f64::MIN_POSITIVE) {
                bad.push(format!(
                    "{name}: {c:.6} deviates from baseline {b:.6} by more than {:.1}%",
                    rel_band * 100.0
                ));
            }
        };
        rel(
            &mut bad,
            "actual_makespan_s",
            self.actual_makespan_s,
            current.actual_makespan_s,
        );
        rel(&mut bad, "replay_s", self.replay_s, current.replay_s);
        for (label, b) in &self.scenarios {
            let Some(c) = current.scenarios.get(label) else {
                bad.push(format!("scenario \"{label}\" missing from current run"));
                continue;
            };
            rel(
                &mut bad,
                &format!("{label}.predicted_s"),
                b.predicted_s,
                c.predicted_s,
            );
            match (b.actual_s, c.actual_s) {
                (Some(ba), Some(ca)) => {
                    rel(&mut bad, &format!("{label}.actual_s"), ba, ca);
                    let err = (c.predicted_s - ca).abs() / ca;
                    if err > self.agreement_band {
                        bad.push(format!(
                            "{label}: prediction {:.6} vs re-run {:.6} — {:.2}% error exceeds \
                             the {:.0}% agreement band",
                            c.predicted_s,
                            ca,
                            100.0 * err,
                            100.0 * self.agreement_band
                        ));
                    }
                }
                (Some(_), None) => {
                    bad.push(format!("scenario \"{label}\" lost its validation re-run"));
                }
                (None, _) => {}
            }
        }
        for label in current.scenarios.keys() {
            if !self.scenarios.contains_key(label) {
                bad.push(format!("scenario \"{label}\" absent from baseline"));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> WhatIfConfig {
        WhatIfConfig {
            n: 1152,
            tile: 288,
            iters: 4,
            grid: 2,
            ratio: 0.4,
        }
    }

    /// The acceptance gate, on a shrunken grid: every validated scenario's
    /// prediction lands within the agreement band of its actual re-run,
    /// and the unperturbed replay tracks the traced run.
    #[test]
    fn predictions_match_actual_reruns_within_band() {
        let r = run(&fast_config());
        assert!(
            r.replay_rel_err() < AGREEMENT_BAND,
            "baseline replay {:.6} vs traced {:.6}",
            r.replay.makespan_s,
            r.actual_makespan_s
        );
        let validated: Vec<_> = r
            .scenarios
            .iter()
            .filter(|s| s.actual_s.is_some())
            .collect();
        assert!(validated.len() >= 3, "only {} validated", validated.len());
        for s in validated {
            let err = s.rel_err().expect("validated");
            assert!(
                err < AGREEMENT_BAND,
                "{}: predicted {:.6} vs re-run {:.6} ({:.2} % error)",
                s.label,
                s.prediction.makespan_s,
                s.actual_s.unwrap(),
                100.0 * err
            );
        }
    }

    /// Cost-scaling wrapper sanity: the rebuilt program re-runs to a
    /// strictly shorter makespan, and only the targeted kind changed
    /// (message and byte counters are identical).
    #[test]
    fn scaled_kind_rerun_shrinks_makespan_only() {
        let wc = fast_config();
        let profile = MachineProfile::nacl();
        let cfg = StencilConfig::new(
            Problem::laplace(wc.n),
            wc.tile,
            wc.iters,
            ProcessGrid::new(wc.grid, wc.grid),
        )
        .with_ratio(wc.ratio)
        .with_profile(profile.clone());
        let program = build_base(&cfg, false).program;
        let rc = RunConfig::simulated(profile, wc.grid * wc.grid);
        let before = runtime::run(&program, &rc);
        let after = runtime::run(&scale_kind_cost(&program, KIND_BOUNDARY, 0.7), &rc);
        assert!(after.makespan < before.makespan);
        assert_eq!(after.remote_bytes(), before.remote_bytes());
    }

    #[test]
    fn baseline_round_trips_and_flags_band_violations() {
        let mut scenarios = BTreeMap::new();
        scenarios.insert(
            "faster".to_string(),
            ScenarioBaseline {
                predicted_s: 0.9,
                actual_s: Some(0.92),
            },
        );
        scenarios.insert(
            "unvalidated".to_string(),
            ScenarioBaseline {
                predicted_s: 0.95,
                actual_s: None,
            },
        );
        let b = WhatIfBaseline {
            config: "test".into(),
            agreement_band: 0.10,
            actual_makespan_s: 1.0,
            replay_s: 1.01,
            scenarios,
        };
        let parsed = WhatIfBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert!(parsed.compare(&b, 0.02).is_empty());

        // Prediction drifts outside the agreement band of its re-run.
        let mut bad = b.clone();
        bad.scenarios.get_mut("faster").unwrap().predicted_s = 0.92 * 1.2;
        let violations = parsed.compare(&bad, 0.5);
        assert!(
            violations.iter().any(|v| v.contains("agreement band")),
            "{violations:?}"
        );
        // A validated scenario cannot silently lose its re-run.
        let mut lost = b.clone();
        lost.scenarios.get_mut("faster").unwrap().actual_s = None;
        assert!(!parsed.compare(&lost, 0.5).is_empty());
    }
}
