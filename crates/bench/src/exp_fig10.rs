//! Figure 10: one node's execution trace — base vs CA on 16 NaCL nodes at
//! kernel ratio 0.4 — showing that CA achieves higher CPU occupancy, and
//! that its kernels are slightly *slower* individually (extra ghost
//! copies) yet the run is faster overall.

use crate::{iterations, paper_workload, statics};
use analyze::AnalyzeConfig;
use ca_stencil::{
    build_base, build_ca, kind_names, Problem, StencilConfig, KIND_BOUNDARY, KIND_INTERIOR,
};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{profiling, RunConfig};
use serde::Serialize;

/// Digest of one version's trace.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Side {
    /// "base" or "CA".
    pub version: String,
    /// Total run time, seconds.
    pub makespan: f64,
    /// Worker-lane occupancy of the profiled node.
    pub occupancy: f64,
    /// Median boundary-task duration, milliseconds.
    pub boundary_median_ms: Option<f64>,
    /// Median interior-task duration, milliseconds.
    pub interior_median_ms: Option<f64>,
    /// Cluster-wide worker lane-time fraction attributed to comm-wait by
    /// the `insight` idle-gap classifier.
    pub comm_wait_fraction: f64,
    /// Achieved makespan over the static critical-path/work lower bound
    /// (`analyze`); ≥ 1 for any correct simulation.
    pub bound_ratio: f64,
    /// Spans the tracer dropped on ring overflow — 0 for a trustworthy
    /// trace; any other value is called out under the table.
    pub dropped: u64,
    /// Gantt rows (`lane start_ms end_ms kind`) of the profiled node.
    pub gantt: Vec<String>,
    /// ASCII rendering of the node's lanes over the whole run
    /// (`#` interior task, `B` boundary task, `C` comm thread, `.` idle).
    pub ascii: Vec<String>,
}

/// The figure: both versions on the same configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Profiled node rank.
    pub node: u32,
    /// Worker lanes per node.
    pub lanes: u32,
    /// Active scheduler name (`runtime::RunReport::scheduler`) — both
    /// sides run under the same policy.
    pub scheduler: String,
    /// Both sides.
    pub sides: Vec<Fig10Side>,
}

/// The figure plus the full span traces (one per side, in `sides`
/// order) — kept outside [`Fig10`] so the figure itself stays
/// JSON-serializable while the traces go to Chrome `trace_event` export.
#[derive(Debug, Clone)]
pub struct Fig10Run {
    /// The serializable figure.
    pub fig: Fig10,
    /// Whole-cluster traces, parallel to `fig.sides`.
    pub traces: Vec<obs::Trace>,
    /// Rendered `insight` diagnosis reports, parallel to `fig.sides`.
    pub reports: Vec<String>,
    /// Prometheus-style text expositions (`obs::expo`), parallel to
    /// `fig.sides`: final metric snapshot, last live sample per node,
    /// and the tracer's measured self-overhead.
    pub proms: Vec<String>,
}

impl Fig10Run {
    /// Render side `i`'s trace as Chrome `trace_event` JSON (loadable in
    /// Perfetto / `chrome://tracing`).
    pub fn chrome_json(&self, i: usize) -> String {
        obs::chrome::to_chrome_json(&self.traces[i])
    }
}

/// Run the experiment. `node` picks which rank to profile (the paper shows
/// one node of the 16).
pub fn run(node: u32) -> Fig10Run {
    let profile = MachineProfile::nacl();
    let (n, tile) = paper_workload(&profile);
    let nodes = 16u32;
    let cfg = StencilConfig::new(
        Problem::laplace(n),
        tile,
        iterations(),
        ProcessGrid::square(nodes),
    )
    .with_steps(15)
    .with_ratio(0.4)
    .with_profile(profile.clone());

    let lanes = profile.compute_threads();
    let mut scheduler = String::new();
    let mut sides = Vec::new();
    let mut traces = Vec::new();
    let mut reports = Vec::new();
    let mut proms = Vec::new();
    for (version, program) in [
        ("base", build_base(&cfg, false).program),
        ("CA", build_ca(&cfg, false).program),
    ] {
        // One unfolding serves both the static bound and the span join.
        let dag = analyze::unfold(
            &program,
            &AnalyzeConfig::new().with_lanes(lanes).without_races(),
        );
        let cols = statics::predict_dag(&dag, lanes);
        // Sampling only reads simulator state, so the virtual-time
        // numbers are identical to a sampling-off run while the figure
        // gains a live-gauge exposition and overhead accounting.
        let report = runtime::run(
            &program,
            &RunConfig::simulated(profile.clone(), nodes)
                .with_trace()
                .with_sampling(RunConfig::DEFAULT_SAMPLE_PERIOD_NS)
                .with_kind_names(kind_names()),
        );
        crate::report::record(&format!("fig10/{version}"), &report);
        scheduler = report.scheduler.clone();
        // Exposition wants the freshest sample per node.
        let mut latest = std::collections::BTreeMap::new();
        for s in &report.samples {
            latest.insert(s.node, s.clone());
        }
        let trace = report.trace.expect("trace requested");
        // The exposition carries the per-peer communication matrix from
        // the traced message spans next to the counters and live gauges.
        proms.push(obs::expo::render_full(
            &format!("fig10/{version}"),
            &report.metrics,
            &latest.into_values().collect::<Vec<_>>(),
            Some(report.overhead),
            Some(&trace.comm_matrix()),
        ));
        let diag = insight::diagnose(&trace, &dag, lanes);
        let horizon = trace.horizon_ns();
        let prof = profiling::profile_node(&trace, node, lanes, horizon);
        let median_of = |kind: u32| {
            prof.kinds
                .iter()
                .find(|k| k.kind == kind)
                .map(|k| k.median_ms)
        };
        sides.push(Fig10Side {
            version: version.to_string(),
            makespan: report.makespan,
            occupancy: prof.occupancy,
            boundary_median_ms: median_of(KIND_BOUNDARY),
            interior_median_ms: median_of(KIND_INTERIOR),
            comm_wait_fraction: diag.totals.comm_wait_fraction(),
            bound_ratio: report.makespan / cols.makespan_bound,
            dropped: trace.dropped,
            gantt: profiling::gantt_rows(&trace, node),
            ascii: profiling::ascii_gantt(&trace, node, lanes, horizon, 100),
        });
        reports.push(diag.render());
        traces.push(trace);
    }
    Fig10Run {
        fig: Fig10 {
            node,
            lanes,
            scheduler,
            sides,
        },
        traces,
        reports,
        proms,
    }
}

/// Print the digest (not the raw Gantt rows; the binary writes those to
/// files).
pub fn print(fig: &Fig10) {
    println!(
        "FIGURE 10: one node's profile (node {}, {} worker lanes), 16 NaCL nodes, ratio 0.4, s = 15, scheduler {}",
        fig.node, fig.lanes, fig.scheduler
    );
    println!(
        "{:>6} {:>12} {:>12} {:>16} {:>16} {:>10} {:>11} {:>7}",
        "ver",
        "time (s)",
        "occupancy",
        "boundary med ms",
        "interior med ms",
        "spans",
        "comm-wait",
        "x bound"
    );
    for s in &fig.sides {
        println!(
            "{:>6} {:>12.3} {:>11.1}% {:>16} {:>16} {:>10} {:>10.1}% {:>7.2}",
            s.version,
            s.makespan,
            100.0 * s.occupancy,
            s.boundary_median_ms
                .map_or("-".to_string(), |v| format!("{v:.3}")),
            s.interior_median_ms
                .map_or("-".to_string(), |v| format!("{v:.3}")),
            s.gantt.len(),
            100.0 * s.comm_wait_fraction,
            s.bound_ratio
        );
    }
    for s in &fig.sides {
        if s.dropped > 0 {
            println!(
                "!! {}: tracer dropped {} spans on ring overflow — occupancy and medians above under-report the run",
                s.version, s.dropped
            );
        }
    }
    for s in &fig.sides {
        println!("\n{} lanes over the whole run:", s.version);
        for row in &s.ascii {
            println!("  {row}");
        }
    }
    if let [base, ca] = &fig.sides[..] {
        println!(
            "-- CA occupancy {:+.1} points over base; CA {:.1}% faster; CA boundary kernels {:+.1}% vs base (paper: 136 ms -> 153 ms median, 14% faster overall, higher occupancy)",
            100.0 * (ca.occupancy - base.occupancy),
            100.0 * (base.makespan / ca.makespan - 1.0),
            match (base.boundary_median_ms, ca.boundary_median_ms) {
                (Some(b), Some(c)) => 100.0 * (c / b - 1.0),
                _ => f64::NAN,
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ca_has_higher_occupancy_and_is_faster() {
        std::env::set_var("REPRO_FAST", "1");
        let r = run(5);
        // Each side ships a Prometheus exposition with live gauges, and
        // neither trace lost spans to ring overflow.
        assert_eq!(r.proms.len(), 2);
        for (side, prom) in r.fig.sides.iter().zip(&r.proms) {
            assert_eq!(side.dropped, 0, "{}", side.version);
            assert!(prom.contains("stencil_occupancy_window"), "{prom}");
            assert!(prom.contains("stencil_tracer_overhead_fraction"), "{prom}");
            // The traced message spans surface as per-peer comm families.
            assert!(prom.contains("stencil_comm_bytes_total"), "{prom}");
            assert!(prom.contains("stencil_comm_dropped_msgs_total"), "{prom}");
        }
        let fig = r.fig;
        assert_eq!(fig.scheduler, "fifo", "default policy is FIFO");
        let base = &fig.sides[0];
        let ca = &fig.sides[1];
        assert!(ca.occupancy > base.occupancy, "{ca:?} vs {base:?}");
        assert!(ca.makespan < base.makespan);
        // CA boundary kernels are individually slower (the extra copies)
        let (b, c) = (
            base.boundary_median_ms.unwrap(),
            ca.boundary_median_ms.unwrap(),
        );
        assert!(c > b, "CA boundary median {c} vs base {b}");
        // interior kernels are identical in both versions
        let (bi, ci) = (
            base.interior_median_ms.unwrap(),
            ca.interior_median_ms.unwrap(),
        );
        assert!((bi - ci).abs() / bi < 1e-6);
        // The simulated makespan can never beat the static lower bound.
        for s in [base, ca] {
            assert!(
                s.bound_ratio >= 1.0 - 1e-9,
                "{}: x bound {}",
                s.version,
                s.bound_ratio
            );
        }
        // The idle-gap classifier sees base stalling on the network every
        // iteration while CA (one window at this scale) all but
        // eliminates comm-wait.
        assert!(base.comm_wait_fraction > 0.0);
        assert!(ca.comm_wait_fraction < base.comm_wait_fraction);
    }
}
