//! Figure 9: the CA step-size sweep — GFLOP/s against the kernel
//! adjustment ratio for step sizes 5, 15, 25 and 40.
//!
//! The step size trades message frequency against redundant work and ghost
//! depth; the paper's point is that "the step size needs to be tuned to
//! get the best possible speedup" — the optimum is interior, not extreme.

use crate::statics::{predict, StaticCols};
use crate::{iterations, paper_workload};
use ca_stencil::{build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use serde::Serialize;

/// One (step size, ratio) measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig9Point {
    /// CA step size.
    pub steps: usize,
    /// Kernel adjustment ratio.
    pub ratio: f64,
    /// CA GFLOP/s.
    pub gflops: f64,
    /// Static-analyzer predictions for this (steps, ratio) program.
    pub statics: StaticCols,
}

/// One (machine, node count) panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Panel {
    /// System name.
    pub system: String,
    /// Node count.
    pub nodes: u32,
    /// Measurements, grouped by step size in input order.
    pub points: Vec<Fig9Point>,
}

/// The paper's step-size grid.
pub const STEP_SIZES: [usize; 4] = [5, 15, 25, 40];

/// Run one panel.
pub fn run_panel(profile: &MachineProfile, nodes: u32, ratios: &[f64]) -> Fig9Panel {
    let (n, tile) = paper_workload(profile);
    let mut points = Vec::new();
    for &steps in &STEP_SIZES {
        for &ratio in ratios {
            let cfg = StencilConfig::new(
                Problem::laplace(n),
                tile,
                iterations(),
                ProcessGrid::square(nodes),
            )
            .with_steps(steps)
            .with_ratio(ratio)
            .with_profile(profile.clone());
            let program = build_ca(&cfg, false).program;
            let statics = predict(&program, profile.compute_threads());
            let report = run(&program, &RunConfig::simulated(profile.clone(), nodes));
            crate::report::record(
                &format!("{}/{}n/s{}/r{:.1}", profile.name, nodes, steps, ratio),
                &report,
            );
            points.push(Fig9Point {
                steps,
                ratio,
                gflops: cfg.gflops(report.makespan),
                statics,
            });
        }
    }
    Fig9Panel {
        system: profile.name.clone(),
        nodes,
        points,
    }
}

/// Run the full figure (both machines, 4/16/64 nodes).
pub fn run_all() -> Vec<Fig9Panel> {
    let ratios = [0.2, 0.4, 0.6, 0.8];
    let mut panels = Vec::new();
    for profile in [MachineProfile::nacl(), MachineProfile::stampede2()] {
        for nodes in [4u32, 16, 64] {
            panels.push(run_panel(&profile, nodes, &ratios));
        }
    }
    panels
}

/// Print the figure.
pub fn print(panels: &[Fig9Panel]) {
    println!("FIGURE 9: CA performance by step size (GFLOP/s)");
    for p in panels {
        println!("-- {} / {} nodes", p.system, p.nodes);
        println!(
            "{:>7} {:>7} {:>12} {:>11} {:>10} {:>11}",
            "steps", "ratio", "GF/s", "msgs*", "rGF*", "bound*"
        );
        for pt in &p.points {
            println!(
                "{:>7} {:>7.1} {:>12.0} {:>11} {:>10.1} {:>10.3}s",
                pt.steps,
                pt.ratio,
                pt.gflops,
                pt.statics.messages,
                pt.statics.redundant_flops as f64 / 1e9,
                pt.statics.makespan_bound,
            );
        }
        println!("   (* static analyzer predictions: cross-node messages, redundant GFLOP, makespan lower bound)");
        // best step size at the smallest ratio
        let min_ratio = p
            .points
            .iter()
            .map(|pt| pt.ratio)
            .fold(f64::INFINITY, f64::min);
        if let Some(best) = p
            .points
            .iter()
            .filter(|pt| pt.ratio == min_ratio)
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
        {
            println!(
                "   best at ratio {:.1}: steps = {} ({:.0} GF/s)",
                min_ratio, best.steps, best.gflops
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_size_matters_at_small_ratio() {
        std::env::set_var("REPRO_FAST", "1");
        let p = run_panel(&MachineProfile::nacl(), 16, &[0.2]);
        let rates: Vec<f64> = p.points.iter().map(|pt| pt.gflops).collect();
        assert_eq!(rates.len(), STEP_SIZES.len());
        let best = rates.iter().cloned().fold(f64::MIN, f64::max);
        let worst = rates.iter().cloned().fold(f64::MAX, f64::min);
        // tuning the step size changes performance noticeably
        assert!(
            best > 1.05 * worst,
            "step size made no difference: {rates:?}"
        );
    }
}
