//! Figure 5: NetPIPE bandwidth as a percentage of theoretical peak, for
//! message sizes 256 B – 4 MiB on NaCL (32 Gb/s peak) and Stampede2
//! (100 Gb/s peak).

use machine::MachineProfile;
use netsim::{netpipe_sweep, NetPipePoint};
use serde::Serialize;

/// One machine's NetPIPE curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Series {
    /// System name.
    pub system: String,
    /// Theoretical peak, Gb/s.
    pub peak_gbits: f64,
    /// The sweep.
    pub points: Vec<NetPipePoint>,
}

/// Run the sweep on both paper machines.
pub fn run() -> Vec<Fig5Series> {
    [MachineProfile::nacl(), MachineProfile::stampede2()]
        .into_iter()
        .map(|p| Fig5Series {
            system: p.name.clone(),
            peak_gbits: p.net_peak_bw_bits / 1e9,
            points: netpipe_sweep(&p, 256, 4 << 20),
        })
        .collect()
}

/// Print the curves as rows.
pub fn print(series: &[Fig5Series]) {
    println!("FIGURE 5: NetPIPE network performance (% of theoretical peak)");
    println!(
        "{:>10} {:>14} {:>10} {:>8}",
        "size", "bandwidth Gb/s", "% peak", "system"
    );
    for s in series {
        for p in &s.points {
            println!(
                "{:>10} {:>14.2} {:>9.1}% {:>10}",
                human_size(p.bytes),
                p.bandwidth_bits / 1e9,
                p.percent_of_peak,
                s.system
            );
        }
        let last = s.points.last().expect("nonempty sweep");
        println!(
            "-- {} asymptote: {:.1} Gb/s of {:.0} Gb/s peak ({:.0}%); paper: {} Gb/s effective",
            s.system,
            last.bandwidth_bits / 1e9,
            s.peak_gbits,
            last.percent_of_peak,
            if s.system == "NaCL" { "27" } else { "86" },
        );
    }
}

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_paper() {
        let series = run();
        assert_eq!(series.len(), 2);
        for s in &series {
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            // small messages: a few percent; big: above 80%
            assert!(first.percent_of_peak < 10.0, "{}", s.system);
            assert!(last.percent_of_peak > 80.0, "{}", s.system);
        }
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(256), "256B");
        assert_eq!(human_size(16 << 10), "16KB");
        assert_eq!(human_size(4 << 20), "4MB");
    }
}
