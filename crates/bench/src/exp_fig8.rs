//! Figure 8: GFLOP/s against the kernel-adjustment ratio, base vs CA, on
//! 4/16/64 nodes of each machine, with the original-kernel base result as
//! the reference line.
//!
//! The ratio emulates a faster memory system or a tuned kernel by updating
//! only an `(r·mb) × (r·nb)` sub-tile — exactly the paper's device. As the
//! kernel shrinks, the base version hits the communication ceiling
//! (per-message processing on the single comm thread) while CA keeps
//! scaling; the paper reports up to 57 % (NaCL) and 33 % (Stampede2)
//! CA-over-base improvements.

use crate::statics::{predict_dag, StaticCols};
use crate::{iterations, paper_workload};
use analyze::AnalyzeConfig;
use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use serde::Serialize;

/// One (ratio) measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig8Point {
    /// Kernel adjustment ratio.
    pub ratio: f64,
    /// Base GFLOP/s (nominal flops / time).
    pub base_gflops: f64,
    /// CA GFLOP/s.
    pub ca_gflops: f64,
    /// Static-analyzer predictions for the base program.
    pub base_static: StaticCols,
    /// Static-analyzer predictions for the CA program.
    pub ca_static: StaticCols,
    /// Base achieved makespan over its static lower bound (≥ 1).
    pub base_bound_ratio: f64,
    /// CA achieved makespan over its static lower bound (≥ 1).
    pub ca_bound_ratio: f64,
}

/// One (machine, node count) panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Panel {
    /// System name.
    pub system: String,
    /// Node count.
    pub nodes: u32,
    /// The ratio sweep.
    pub points: Vec<Fig8Point>,
    /// The black reference line: base with the original kernel (ratio 1).
    pub base_original_gflops: f64,
}

/// CA step size used throughout (the paper's 15).
pub const STEPS: usize = 15;

fn run_pair(profile: &MachineProfile, nodes: u32, ratio: f64) -> Fig8Point {
    let (n, tile) = paper_workload(profile);
    let cfg = StencilConfig::new(
        Problem::laplace(n),
        tile,
        iterations(),
        ProcessGrid::square(nodes),
    )
    .with_steps(STEPS)
    .with_ratio(ratio)
    .with_profile(profile.clone());
    let sim = RunConfig::simulated(profile.clone(), nodes);
    let base_program = build_base(&cfg, false).program;
    let ca_program = build_ca(&cfg, false).program;
    let lanes = profile.compute_threads();
    // Unfold once per program; the same enumeration backs both static
    // columns and (in the doctor harness) the trace join.
    let acfg = AnalyzeConfig::new().with_lanes(lanes).without_races();
    let base_static = predict_dag(&analyze::unfold(&base_program, &acfg), lanes);
    let ca_static = predict_dag(&analyze::unfold(&ca_program, &acfg), lanes);
    let base = run(&base_program, &sim);
    let ca = run(&ca_program, &sim);
    let label = format!("{}/{}n/r{:.1}", profile.name, nodes, ratio);
    crate::report::record(&format!("{label}/base"), &base);
    crate::report::record(&format!("{label}/ca"), &ca);
    Fig8Point {
        ratio,
        base_gflops: cfg.gflops(base.makespan),
        ca_gflops: cfg.gflops(ca.makespan),
        base_static,
        ca_static,
        base_bound_ratio: base.makespan / base_static.makespan_bound,
        ca_bound_ratio: ca.makespan / ca_static.makespan_bound,
    }
}

/// Run one panel.
pub fn run_panel(profile: &MachineProfile, nodes: u32, ratios: &[f64]) -> Fig8Panel {
    let points = ratios
        .iter()
        .map(|&ratio| run_pair(profile, nodes, ratio))
        .collect();
    let base_original_gflops = run_pair(profile, nodes, 1.0).base_gflops;
    Fig8Panel {
        system: profile.name.clone(),
        nodes,
        points,
        base_original_gflops,
    }
}

/// Run the full figure: both machines × {4, 16, 64} nodes × the paper's
/// ratio grid.
pub fn run_all() -> Vec<Fig8Panel> {
    let ratios = [0.2, 0.4, 0.6, 0.8];
    let mut panels = Vec::new();
    for profile in [MachineProfile::nacl(), MachineProfile::stampede2()] {
        for nodes in [4u32, 16, 64] {
            panels.push(run_panel(&profile, nodes, &ratios));
        }
    }
    panels
}

/// Print the figure.
pub fn print(panels: &[Fig8Panel]) {
    println!("FIGURE 8: tuned-kernel performance (GFLOP/s), base vs CA (s = {STEPS})");
    for p in panels {
        println!(
            "-- {} / {} nodes (reference: base with original kernel = {:.0} GFLOP/s)",
            p.system, p.nodes, p.base_original_gflops
        );
        println!(
            "{:>7} {:>12} {:>12} {:>10} {:>11} {:>11} {:>10} {:>11} {:>8}",
            "ratio",
            "base GF/s",
            "CA GF/s",
            "CA/base",
            "base msgs*",
            "CA msgs*",
            "CA rGF*",
            "CA bound*",
            "CA x bnd",
        );
        for pt in &p.points {
            println!(
                "{:>7.1} {:>12.0} {:>12.0} {:>9.1}% {:>11} {:>11} {:>10.1} {:>10.3}s {:>8.2}",
                pt.ratio,
                pt.base_gflops,
                pt.ca_gflops,
                100.0 * (pt.ca_gflops / pt.base_gflops - 1.0),
                pt.base_static.messages,
                pt.ca_static.messages,
                pt.ca_static.redundant_flops as f64 / 1e9,
                pt.ca_static.makespan_bound,
                pt.ca_bound_ratio,
            );
        }
        println!("   (* static analyzer predictions: cross-node messages, CA redundant GFLOP, makespan lower bound; x bnd = achieved/bound)");
    }
}

/// Best CA-over-base improvement in a set of panels, as a percentage.
pub fn best_improvement(panels: &[Fig8Panel], system: &str) -> f64 {
    panels
        .iter()
        .filter(|p| p.system == system)
        .flat_map(|p| p.points.iter())
        .map(|pt| 100.0 * (pt.ca_gflops / pt.base_gflops - 1.0))
        .fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ca_wins_at_small_ratio_on_16_nacl_nodes() {
        std::env::set_var("REPRO_FAST", "1");
        let panel = run_panel(&MachineProfile::nacl(), 16, &[0.2, 0.4, 0.8]);
        let p02 = &panel.points[0];
        let p04 = &panel.points[1];
        let p08 = &panel.points[2];
        assert!(
            p02.ca_gflops > 1.3 * p02.base_gflops,
            "ratio 0.2: CA {} vs base {}",
            p02.ca_gflops,
            p02.base_gflops
        );
        assert!(
            p04.ca_gflops > 1.05 * p04.base_gflops,
            "ratio 0.4: CA {} vs base {}",
            p04.ca_gflops,
            p04.base_gflops
        );
        // compute-bound end: near parity
        let gap = (p08.ca_gflops / p08.base_gflops - 1.0).abs();
        assert!(gap < 0.1, "ratio 0.8 gap = {gap}");
        // and the base never beats its original-kernel reference by less
        // than the tuned kernels do
        assert!(p02.base_gflops >= panel.base_original_gflops * 0.9);
        // no simulated point beats its static makespan lower bound
        for pt in &panel.points {
            assert!(pt.base_bound_ratio >= 1.0 - 1e-9, "{pt:?}");
            assert!(pt.ca_bound_ratio >= 1.0 - 1e-9, "{pt:?}");
        }
    }
}
