//! The Krylov-solver motivation (paper Section I): stencils/SpMV are the
//! kernels inside CG and friends, whose per-iteration global reductions
//! are the other latency bottleneck. This experiment (a) solves a Poisson
//! system with real CG to show the substrate works, and (b) prices a
//! distributed CG iteration on the paper's machines, standard vs
//! pipelined, across node counts.

use machine::MachineProfile;
use serde::Serialize;
use spmv::{cg_solve, poisson_matrix, CgCostModel};

/// One node-count row of the CG cost table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KrylovRow {
    /// Node count.
    pub nodes: u32,
    /// Standard CG iteration time, seconds.
    pub standard: f64,
    /// Pipelined CG iteration time, seconds.
    pub pipelined: f64,
    /// Fraction of the standard iteration spent in the two allreduces.
    pub reduction_share: f64,
}

/// Solve a small Poisson system for real, then price iterations at paper
/// scale on `profile`.
pub fn run(profile: &MachineProfile, n_model: usize) -> (spmv::CgResult, Vec<KrylovRow>) {
    // real solve, real numerics
    let n = 24;
    let a = poisson_matrix(n);
    let b = vec![1.0; n * n];
    let mut x = vec![0.0; n * n];
    let result = cg_solve(&a, &b, &mut x, 1e-9, 2000);
    assert!(result.residual < 1e-9, "CG failed to converge");

    let model = CgCostModel::new(profile);
    let rows = [1u32, 4, 16, 64]
        .iter()
        .map(|&nodes| KrylovRow {
            nodes,
            standard: model.iteration_time(n_model, nodes),
            pipelined: model.pipelined_iteration_time(n_model, nodes),
            reduction_share: model.reduction_share(n_model, nodes),
        })
        .collect();
    (result, rows)
}

/// Print the table.
pub fn print(profile: &MachineProfile, n_model: usize, solve: &spmv::CgResult, rows: &[KrylovRow]) {
    println!(
        "KRYLOV: real CG solve converged in {} iterations (residual {:.2e})",
        solve.iterations, solve.residual
    );
    println!(
        "CG iteration cost model, {} (problem {}k):",
        profile.name,
        n_model / 1000
    );
    println!(
        "{:>6} {:>14} {:>14} {:>16}",
        "nodes", "standard (s)", "pipelined (s)", "reduction share"
    );
    for r in rows {
        println!(
            "{:>6} {:>14.6} {:>14.6} {:>15.1}%",
            r.nodes,
            r.standard,
            r.pipelined,
            100.0 * r.reduction_share
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_share_grows_and_pipelining_helps() {
        let (solve, rows) = run(&MachineProfile::nacl(), 23_040);
        assert!(solve.residual < 1e-9);
        assert!(rows.last().unwrap().reduction_share > rows[0].reduction_share);
        for r in &rows {
            assert!(r.pipelined <= r.standard, "{r:?}");
        }
    }
}
