//! # spmv — the PETSc-style baseline
//!
//! The paper's baseline implements Jacobi iteration as repeated sparse
//! matrix–vector products in PETSc (Section IV-A). This crate reproduces
//! that formulation:
//!
//! * [`csr`] — CSR with 64-bit indices (the paper builds PETSc with 64-bit
//!   ints and charges the index loads against it);
//! * [`laplacian`] — the 5-point update assembled as `x' = A·x + b` on the
//!   flattened grid vector;
//! * [`dist`] — PETSc's default row-block partition, one rank per core,
//!   with the `VecScatter`-style one-grid-row ghost exchange emulated and
//!   *checked* (any out-of-halo access panics);
//! * [`perf`] — the calibrated bulk-synchronous performance model used by
//!   the Figure 7 strong-scaling comparison;
//! * [`cg`] — a Conjugate-Gradients solver on the Poisson matrix with the
//!   reduction-cost model that motivates s-step/pipelined Krylov methods.
//!
//! The numerical result agrees with the stencil reference to rounding
//! (the CSR accumulation order differs from the stencil kernel's fixed
//! expression, so agreement is ~1e-14, not bitwise — same as real PETSc).

#![deny(missing_docs)]

pub mod cg;
pub mod csr;
pub mod dist;
pub mod laplacian;
pub mod perf;

pub use cg::{cg_solve, poisson_matrix, CgCostModel, CgResult};
pub use csr::Csr;
pub use dist::{partition, run_distributed, ExchangeStats, RankRange};
pub use laplacian::{initial_vector, stencil_matrix};
pub use perf::{PetscModel, PetscPrediction};
