//! Performance model of the PETSc baseline on the paper's machines.
//!
//! PETSc's Jacobi-by-SpMV is bulk-synchronous per iteration: every rank
//! applies its row block, then the `VecScatter` exchanges one grid row with
//! each adjacent rank. One MPI rank runs per core (Section V), so the
//! per-rank bandwidth share is `node bandwidth / cores`. The iteration time
//! is the compute time plus the unoverlapped part of the ghost exchange —
//! PETSc posts its scatters early, so only the latency-and-wire tail of
//! the two `8n`-byte row messages lands on the critical path.

use ca_stencil::StencilConfig;
use machine::{MachineProfile, SpmvCostModel};
use netsim::NetworkModel;
use serde::Serialize;

/// Predicted timing of one PETSc-style run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PetscPrediction {
    /// Time per Jacobi iteration, seconds.
    pub iteration_time: f64,
    /// Whole-run time, seconds.
    pub total_time: f64,
    /// Rate in GFLOP/s (9 flops per grid point per iteration, the same
    /// accounting as the stencil versions).
    pub gflops: f64,
}

/// The analytic model.
#[derive(Debug, Clone)]
pub struct PetscModel {
    /// The machine.
    pub profile: MachineProfile,
    /// Kernel cost model.
    pub cost: SpmvCostModel,
    /// Network model for the ghost exchange.
    pub net: NetworkModel,
}

impl PetscModel {
    /// Build for a machine profile.
    pub fn new(profile: &MachineProfile) -> Self {
        PetscModel {
            profile: profile.clone(),
            cost: SpmvCostModel::for_profile(profile),
            net: NetworkModel::from_profile(profile),
        }
    }

    /// Time of one iteration on an `n × n` grid over `nodes` nodes.
    pub fn iteration_time(&self, n: usize, nodes: u32) -> f64 {
        let ranks = (nodes * self.profile.cores_per_node) as usize;
        // rows per rank (the busiest rank rounds up)
        let rows = (n * n).div_ceil(ranks.max(1));
        let compute = self.cost.local_spmv_time(rows);
        // Each interior rank exchanges one full grid row (8n bytes) with
        // each adjacent rank. The 1D row partition makes these messages
        // much larger than the 2D tile strips — the surface-to-volume
        // penalty the paper attributes to the flattened formulation.
        let comm = 2.0 * self.net.transfer_time(8 * n);
        compute + comm
    }

    /// Predict a whole run.
    pub fn predict(&self, cfg: &StencilConfig, nodes: u32) -> PetscPrediction {
        let iteration_time = self.iteration_time(cfg.problem.n, nodes);
        let total_time = iteration_time * cfg.iterations as f64;
        PetscPrediction {
            iteration_time,
            total_time,
            gflops: cfg.gflops(total_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_stencil::Problem;
    use netsim::ProcessGrid;

    fn cfg(n: usize) -> StencilConfig {
        StencilConfig::new(Problem::laplace(n), 288, 100, ProcessGrid::new(1, 1))
    }

    #[test]
    fn single_node_rate_near_half_of_parsec() {
        // Figure 7's observation: tiled PaRSEC ≈ 2 × PETSc.
        let m = PetscModel::new(&MachineProfile::nacl());
        let pred = m.predict(&cfg(23_040), 1);
        let parsec = machine::StencilCostModel::for_profile(&MachineProfile::nacl())
            .node_gflops_single(23_040, 288);
        let ratio = parsec / pred.gflops;
        assert!((1.7..=2.4).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn scales_almost_linearly_when_compute_bound() {
        let m = PetscModel::new(&MachineProfile::nacl());
        let t1 = m.predict(&cfg(23_040), 1).total_time;
        let t16 = m.predict(&cfg(23_040), 16).total_time;
        let speedup = t1 / t16;
        assert!(
            (13.0..=16.0).contains(&speedup),
            "16-node speedup = {speedup}"
        );
    }

    #[test]
    fn comm_tail_grows_with_node_count() {
        // per-iteration communication time is constant, so its share grows
        let m = PetscModel::new(&MachineProfile::nacl());
        let i1 = m.iteration_time(23_040, 1);
        let i64n = m.iteration_time(23_040, 64);
        assert!(i64n < i1 / 40.0, "i1 = {i1}, i64 = {i64n}");
        assert!(i64n > i1 / 64.0, "communication tail should bite");
    }
}
