//! Compressed Sparse Row matrices with 64-bit indices.
//!
//! The paper builds PETSc with 64-bit integers and attributes much of the
//! SpMV formulation's deficit to the index loads; this CSR mirrors that
//! layout (`i64` column indices and row pointers) so the memory-traffic
//! accounting in [`machine::SpmvCostModel`] matches what the kernel really
//! touches.

use serde::Serialize;

/// A CSR matrix over `f64` with `i64` indices.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, `rows + 1` entries.
    pub row_ptr: Vec<i64>,
    /// Column indices, one per nonzero.
    pub col_idx: Vec<i64>,
    /// Nonzero values.
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from triplets `(row, col, value)`; triplets must be sorted by
    /// row (ties by column) and contain no duplicates.
    pub fn from_sorted_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut row_ptr = vec![0i64; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            if let Some((lr, lc)) = last {
                assert!(
                    (r, c) > (lr, lc),
                    "triplets not strictly sorted: ({lr},{lc}) then ({r},{c})"
                );
            }
            last = Some((r, c));
            row_ptr[r + 1] += 1;
            col_idx.push(c as i64);
            values.push(v);
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        }
    }

    /// `y = A·x + b` — the Jacobi update with the boundary contribution
    /// folded into `b`.
    pub fn spmv_add(&self, x: &[f64], b: &[f64], y: &mut [f64]) {
        assert_eq!(b.len(), self.rows, "b length mismatch");
        self.spmv(x, y);
        for (yi, bi) in y.iter_mut().zip(b) {
            *yi += bi;
        }
    }

    /// Average nonzeros per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        self.nnz() as f64 / self.rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [[2, 0, 1],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        Csr::from_sorted_triplets(
            3,
            3,
            [
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [5.0, 6.0, 19.0]);
        assert_eq!(a.nnz(), 5);
        assert!((a.avg_nnz_per_row() - 5.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn spmv_add_includes_rhs() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let mut y = [0.0; 3];
        a.spmv_add(&x, &b, &mut y);
        assert_eq!(y, [15.0, 26.0, 49.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = Csr::from_sorted_triplets(3, 3, [(0, 1, 1.0)]);
        let mut y = [9.0; 3];
        a.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, [2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn unsorted_triplets_rejected() {
        let _ = Csr::from_sorted_triplets(2, 2, [(1, 0, 1.0), (0, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        let _ = Csr::from_sorted_triplets(2, 2, [(0, 5, 1.0)]);
    }
}
