//! Conjugate Gradients on the 5-point Poisson matrix — the Krylov-solver
//! workload the paper's introduction motivates ("they constitute a key
//! component of many canonical algorithms … and Krylov solvers"), with the
//! communication cost model that explains why s-step/pipelined variants
//! (Hoemmen; Yamazaki et al., both cited by the paper) matter: every CG
//! iteration contains two global reductions.

use crate::csr::Csr;
use machine::{MachineProfile, SpmvCostModel};
use netsim::{CollectiveModel, NetworkModel};
use serde::Serialize;

/// Assemble the SPD 5-point Poisson matrix (4 on the diagonal, −1 to each
/// neighbour, Dirichlet boundary folded out) on an `n × n` grid.
pub fn poisson_matrix(n: usize) -> Csr {
    let ni = n as i64;
    let mut triplets = Vec::with_capacity(5 * n * n);
    for i in 0..ni {
        for j in 0..ni {
            let p = (i * ni + j) as usize;
            let entries = [
                (i - 1, j, -1.0),
                (i, j - 1, -1.0),
                (i, j, 4.0),
                (i, j + 1, -1.0),
                (i + 1, j, -1.0),
            ];
            for (r, c, v) in entries {
                if r >= 0 && c >= 0 && r < ni && c < ni {
                    triplets.push((p, (r * ni + c) as usize, v));
                }
            }
        }
    }
    Csr::from_sorted_triplets(n * n, n * n, triplets)
}

/// Result of a CG solve.
#[derive(Debug, Clone, Serialize)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: u32,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Residual norm after each iteration.
    pub history: Vec<f64>,
}

/// Solve `A x = b` by plain CG to `tol` on the residual 2-norm (or
/// `max_iters`). `x` holds the initial guess on entry and the solution on
/// exit.
pub fn cg_solve(a: &Csr, b: &[f64], x: &mut [f64], tol: f64, max_iters: u32) -> CgResult {
    assert_eq!(a.rows, a.cols, "CG needs a square matrix");
    assert_eq!(b.len(), a.rows, "rhs length mismatch");
    assert_eq!(x.len(), a.rows, "x length mismatch");
    let n = a.rows;
    let mut r = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    p.copy_from_slice(&r);
    let mut rr: f64 = dot(&r, &r);
    let mut history = Vec::new();
    let mut iterations = 0;
    while iterations < max_iters && rr.sqrt() > tol {
        a.spmv(&p, &mut ap);
        let alpha = rr / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        iterations += 1;
        history.push(rr.sqrt());
    }
    CgResult {
        iterations,
        residual: rr.sqrt(),
        history,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Communication cost model of one distributed CG iteration: the local
/// SpMV + halo exchange, three vector updates, and **two global
/// allreduces** (for `α` and `β`) that a pipelined/s-step variant hides or
/// amortizes.
#[derive(Debug, Clone)]
pub struct CgCostModel {
    /// The machine.
    pub profile: MachineProfile,
    /// SpMV kernel model.
    pub spmv: SpmvCostModel,
    /// Collective model for the dot products.
    pub coll: CollectiveModel,
}

impl CgCostModel {
    /// Build for a machine.
    pub fn new(profile: &MachineProfile) -> Self {
        CgCostModel {
            profile: profile.clone(),
            spmv: SpmvCostModel::for_profile(profile),
            coll: CollectiveModel::new(NetworkModel::from_profile(profile)),
        }
    }

    fn local_compute(&self, n: usize, nodes: u32) -> f64 {
        let ranks = (nodes * self.profile.cores_per_node) as usize;
        let rows = (n * n).div_ceil(ranks.max(1));
        // SpMV plus three AXPY-class sweeps (3 vectors × 24 B/row)
        self.spmv.local_spmv_time(rows) + rows as f64 * 72.0 / self.spmv.per_rank_bw()
    }

    /// Standard CG: compute, then two blocking allreduces.
    pub fn iteration_time(&self, n: usize, nodes: u32) -> f64 {
        self.local_compute(n, nodes) + 2.0 * self.coll.allreduce_time(nodes, 8)
    }

    /// Pipelined CG (Ghysels/Vanroose style): the allreduces overlap the
    /// SpMV, so only the non-overlapped part is paid.
    pub fn pipelined_iteration_time(&self, n: usize, nodes: u32) -> f64 {
        let compute = self.local_compute(n, nodes);
        compute.max(2.0 * self.coll.allreduce_time(nodes, 8))
    }

    /// Fraction of a standard iteration spent in reductions.
    pub fn reduction_share(&self, n: usize, nodes: u32) -> f64 {
        2.0 * self.coll.allreduce_time(nodes, 8) / self.iteration_time(n, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_matrix_is_symmetric_diagonally_dominant() {
        let a = poisson_matrix(6);
        // symmetry: check A[p][q] == A[q][p] by dense reconstruction
        let n = a.rows;
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for k in a.row_ptr[r] as usize..a.row_ptr[r + 1] as usize {
                dense[r * n + a.col_idx[k] as usize] = a.values[k];
            }
        }
        for r in 0..n {
            for c in 0..n {
                assert_eq!(dense[r * n + c], dense[c * n + r]);
            }
            assert_eq!(dense[r * n + r], 4.0);
        }
    }

    #[test]
    fn cg_solves_poisson() {
        let n = 12;
        let a = poisson_matrix(n);
        let b = vec![1.0; n * n];
        let mut x = vec![0.0; n * n];
        let res = cg_solve(&a, &b, &mut x, 1e-10, 500);
        assert!(res.residual < 1e-10, "residual = {}", res.residual);
        // verify: A x ≈ b
        let mut ax = vec![0.0; n * n];
        a.spmv(&x, &mut ax);
        let err = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "err = {err}");
        // CG on an SPD matrix: residual history decreases overall
        assert!(res.history.last().unwrap() < res.history.first().unwrap());
    }

    #[test]
    fn cg_converges_in_at_most_n_steps_in_exact_arithmetic_spirit() {
        // small system: convergence well before the dimension bound
        let a = poisson_matrix(4);
        let b: Vec<f64> = (0..16).map(|i| (i % 5) as f64).collect();
        let mut x = vec![0.0; 16];
        let res = cg_solve(&a, &b, &mut x, 1e-12, 16 * 4);
        assert!(res.iterations <= 32);
        assert!(res.residual < 1e-12);
    }

    #[test]
    fn reduction_share_grows_with_node_count() {
        let m = CgCostModel::new(&MachineProfile::nacl());
        let s1 = m.reduction_share(23_040, 4);
        let s2 = m.reduction_share(23_040, 64);
        assert!(s2 > s1, "share 4 nodes {s1}, 64 nodes {s2}");
    }

    #[test]
    fn pipelining_never_hurts_and_helps_at_scale() {
        let m = CgCostModel::new(&MachineProfile::nacl());
        for nodes in [4u32, 16, 64] {
            let std = m.iteration_time(23_040, nodes);
            let pip = m.pipelined_iteration_time(23_040, nodes);
            assert!(pip <= std, "{nodes} nodes: {pip} vs {std}");
        }
        // with a tiny local problem the reductions dominate and pipelining
        // matters
        let std = m.iteration_time(1_000, 64);
        let pip = m.pipelined_iteration_time(1_000, 64);
        assert!(pip < 0.9 * std, "{pip} vs {std}");
    }
}
