//! Assembling the 5-point stencil as a sparse matrix — the PETSc
//! formulation (paper Section IV-A): "we simply expand the 2D compute grid
//! points into 1D solution vector, and the corresponding 5 points stencil
//! update expresses as a sparse matrix".
//!
//! Grid point `(i, j)` becomes vector entry `i·n + j`; one Jacobi sweep is
//! `x' = A·x + b`, where `b` carries the static Dirichlet boundary
//! contributions.

use crate::csr::Csr;
use ca_stencil::Problem;

/// Build the update matrix and boundary vector for one Jacobi sweep of
/// `problem`.
pub fn stencil_matrix(problem: &Problem) -> (Csr, Vec<f64>) {
    let n = problem.n;
    let ni = n as i64;
    let mut b = vec![0.0; n * n];
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(5 * n * n);
    for i in 0..ni {
        for j in 0..ni {
            let p = (i * ni + j) as usize;
            // variable-coefficient operators simply change the values per
            // row; the matrix structure is unchanged
            let w = problem.op.weights_at(i, j);
            // neighbours in ascending column order: N, W, C, E, S
            let entries = [
                (i - 1, j, w.north),
                (i, j - 1, w.west),
                (i, j, w.center),
                (i, j + 1, w.east),
                (i + 1, j, w.south),
            ];
            for (r, c, weight) in entries {
                if r >= 0 && c >= 0 && r < ni && c < ni {
                    triplets.push((p, (r * ni + c) as usize, weight));
                } else {
                    b[p] += weight * (problem.bc)(r, c);
                }
            }
        }
    }
    (Csr::from_sorted_triplets(n * n, n * n, triplets), b)
}

/// The initial solution vector: the problem's iterate-0 interior, flattened
/// row-major.
pub fn initial_vector(problem: &Problem) -> Vec<f64> {
    let n = problem.n as i64;
    let mut x = Vec::with_capacity((n * n) as usize);
    for i in 0..n {
        for j in 0..n {
            x.push((problem.init)(i, j));
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_stencil::{jacobi_reference, max_abs_diff};

    #[test]
    fn matrix_has_five_point_structure() {
        let p = Problem::laplace(6);
        let (a, _) = stencil_matrix(&p);
        assert_eq!(a.rows, 36);
        // interior rows hold 5 nonzeros, corner rows 3, edge rows 4 — but
        // zero-weight entries are still stored (PETSc stores the pattern),
        // so count via structure: interior point (2,2) = row 14
        let r = 14usize;
        let nnz = (a.row_ptr[r + 1] - a.row_ptr[r]) as usize;
        assert_eq!(nnz, 5);
        // corner (0,0): two neighbours fall outside
        let nnz0 = (a.row_ptr[1] - a.row_ptr[0]) as usize;
        assert_eq!(nnz0, 3);
    }

    #[test]
    fn one_sweep_matches_stencil_reference() {
        let p = Problem::scrambled(8, 21);
        let (a, b) = stencil_matrix(&p);
        let x = initial_vector(&p);
        let mut y = vec![0.0; x.len()];
        a.spmv_add(&x, &b, &mut y);
        let want = jacobi_reference(&p, 1);
        // accumulation order differs from the stencil kernel, so agreement
        // is to rounding, not bitwise
        assert!(max_abs_diff(&y, &want) < 1e-14);
    }

    #[test]
    fn boundary_vector_zero_for_zero_bc() {
        let mut p = Problem::scrambled(6, 3);
        p.bc = std::sync::Arc::new(|_, _| 0.0);
        let (_, b) = stencil_matrix(&p);
        assert!(b.iter().all(|&v| v == 0.0));
    }
}
