//! The distributed SpMV: PETSc's default row-block partition, emulated.
//!
//! PETSc "by default will partition the sparse matrix by rows with each
//! process having a block of matrix rows" (Section IV-A) and runs one MPI
//! rank per core. For the row-ordered 5-point matrix a rank's off-block
//! column accesses are exactly one grid row above and one below its block
//! — the `VecScatter` ghost exchange. This module runs the partitioned
//! iteration rank by rank against explicit ghost buffers, *proving* the
//! communication pattern (any access outside block ± one grid row panics)
//! while producing the true numerical result.

use crate::csr::Csr;
use crate::laplacian::{initial_vector, stencil_matrix};
use ca_stencil::Problem;
use serde::Serialize;

/// The contiguous row range of one rank. Rows here are *matrix* rows
/// (grid points); blocks are aligned to whole grid rows, as PETSc's
/// `DMDACreate2d`-style decomposition produces for a 1D split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RankRange {
    /// First matrix row owned.
    pub start: usize,
    /// One past the last matrix row owned.
    pub end: usize,
}

impl RankRange {
    /// Number of owned rows.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the rank owns nothing (more ranks than grid rows).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Split `n` grid rows (each of `n` points) over `ranks` ranks as evenly
/// as whole grid rows allow.
pub fn partition(n: usize, ranks: usize) -> Vec<RankRange> {
    assert!(ranks >= 1, "need at least one rank");
    let base = n / ranks;
    let extra = n % ranks;
    let mut start_row = 0usize;
    (0..ranks)
        .map(|r| {
            let rows = base + usize::from(r < extra);
            let rr = RankRange {
                start: start_row * n,
                end: (start_row + rows) * n,
            };
            start_row += rows;
            rr
        })
        .collect()
}

/// Per-iteration communication of one rank: messages exchanged and bytes
/// moved (both directions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ExchangeStats {
    /// Ghost messages received per iteration (0–2: the rows above/below).
    pub recv_messages: u64,
    /// Ghost bytes received per iteration.
    pub recv_bytes: u64,
}

/// Run `iterations` Jacobi sweeps with the matrix partitioned over
/// `ranks` ranks, checking the ghost-access invariant. Returns the final
/// vector and the per-rank exchange statistics.
pub fn run_distributed(
    problem: &Problem,
    ranks: usize,
    iterations: u32,
) -> (Vec<f64>, Vec<ExchangeStats>) {
    let n = problem.n;
    let (a, b) = stencil_matrix(problem);
    let parts = partition(n, ranks);
    let mut stats = vec![ExchangeStats::default(); ranks];

    let mut x = initial_vector(problem);
    let mut y = vec![0.0; x.len()];
    for _ in 0..iterations {
        for (rank, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            // ghost region: one grid row above and below the block
            let ghost_lo = part.start.saturating_sub(n);
            let ghost_hi = (part.end + n).min(n * n);
            if part.start > 0 {
                stats[rank].recv_messages += 1;
                stats[rank].recv_bytes += (n * 8) as u64;
            }
            if part.end < n * n {
                stats[rank].recv_messages += 1;
                stats[rank].recv_bytes += (n * 8) as u64;
            }
            spmv_rows(&a, &x, &b, &mut y, part, ghost_lo, ghost_hi);
        }
        std::mem::swap(&mut x, &mut y);
    }
    (x, stats)
}

/// Apply rows `[part.start, part.end)` of `y = A·x + b`, panicking if any
/// column access leaves `[ghost_lo, ghost_hi)` — the halo invariant.
fn spmv_rows(
    a: &Csr,
    x: &[f64],
    b: &[f64],
    y: &mut [f64],
    part: &RankRange,
    ghost_lo: usize,
    ghost_hi: usize,
) {
    for r in part.start..part.end {
        let (lo, hi) = (a.row_ptr[r] as usize, a.row_ptr[r + 1] as usize);
        let mut acc = 0.0;
        for k in lo..hi {
            let c = a.col_idx[k] as usize;
            assert!(
                c >= ghost_lo && c < ghost_hi,
                "row {r} accesses column {c} outside its ghost region [{ghost_lo},{ghost_hi})"
            );
            acc += a.values[k] * x[c];
        }
        y[r] = acc + b[r];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_stencil::{jacobi_reference, max_abs_diff};

    #[test]
    fn partition_is_balanced_and_covers() {
        let parts = partition(10, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], RankRange { start: 0, end: 40 });
        assert_eq!(parts[1], RankRange { start: 40, end: 70 });
        assert_eq!(
            parts[2],
            RankRange {
                start: 70,
                end: 100
            }
        );
    }

    #[test]
    fn more_ranks_than_rows_leaves_empty_ranks() {
        let parts = partition(2, 5);
        let total: usize = parts.iter().map(RankRange::len).sum();
        assert_eq!(total, 4);
        assert!(parts.iter().any(RankRange::is_empty));
    }

    #[test]
    fn distributed_matches_reference() {
        let p = Problem::scrambled(12, 4);
        for ranks in [1, 3, 4, 12] {
            let (x, _) = run_distributed(&p, ranks, 6);
            let want = jacobi_reference(&p, 6);
            assert!(max_abs_diff(&x, &want) < 1e-13, "ranks = {ranks} diverged");
        }
    }

    #[test]
    fn distributed_runs_are_rank_count_invariant() {
        let p = Problem::scrambled(8, 8);
        let (x1, _) = run_distributed(&p, 1, 5);
        let (x4, _) = run_distributed(&p, 4, 5);
        // same serial accumulation order per row => bitwise equal
        assert_eq!(x1, x4);
    }

    #[test]
    fn exchange_stats_match_halo_structure() {
        let p = Problem::laplace(8);
        let (_, stats) = run_distributed(&p, 4, 3);
        // edge ranks exchange one ghost row per iteration, middles two
        assert_eq!(stats[0].recv_messages, 3);
        assert_eq!(stats[1].recv_messages, 6);
        assert_eq!(stats[2].recv_messages, 6);
        assert_eq!(stats[3].recv_messages, 3);
        assert_eq!(stats[1].recv_bytes, 6 * 8 * 8);
    }
}
