//! Cross-crate integration test crate. The tests live in `tests/tests/`;
//! this library only hosts shared helpers.

#![deny(missing_docs)]

use ca_stencil::{Problem, StencilConfig};
use netsim::ProcessGrid;

/// A scrambled-field configuration for equivalence testing.
pub fn scrambled_config(
    n: usize,
    tile: usize,
    iters: u32,
    grid: ProcessGrid,
    steps: usize,
    seed: u64,
) -> StencilConfig {
    StencilConfig::new(Problem::scrambled(n, seed), tile, iters, grid).with_steps(steps)
}
