//! The `insight` diagnosis engine end to end: a full stencil run joins
//! every task span back to the statically unfolded DAG and never beats
//! the static makespan bound, and the wall-clock (shared-memory) and
//! virtual-time (simulated) executors agree on how an idle gap is
//! classified.

use analyze::AnalyzeConfig;
use ca_stencil::{build_base, kind_names, Problem, StencilConfig};
use insight::GapCause;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, FlowData, OutputDep, Params, Program, RunConfig, TaskClass, TaskKey};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn stencil_diagnosis_joins_every_span_and_respects_the_bound() {
    // 4×4 tiles on a 2×2 grid, 3 iterations: 64 tasks.
    let cfg = StencilConfig::new(Problem::laplace(16), 4, 3, ProcessGrid::new(2, 2));
    let program = build_base(&cfg, false).program;
    let lanes = MachineProfile::nacl().compute_threads();

    let acfg = AnalyzeConfig::new().with_lanes(lanes);
    let dag = analyze::unfold(&program, &acfg);
    let analysis = analyze::analyze_dag(&dag, &acfg);
    assert!(analysis.is_clean(), "{}", analysis.report());

    let report = run(
        &program,
        &RunConfig::simulated(MachineProfile::nacl(), 4)
            .with_trace()
            .with_kind_names(kind_names()),
    );
    let trace = report.trace.expect("trace requested");
    let d = insight::diagnose(&trace, &dag, lanes);

    // Every task span carries an instance id that resolves in the DAG.
    assert_eq!(d.joined_spans as u64, report.tasks_executed);
    assert_eq!(d.unmatched_spans, 0);

    // The realized critical path exists and fits inside the makespan.
    let cp = d.critical_path.as_ref().expect("spans joined");
    assert!(cp.tasks >= 1);
    assert!(cp.busy_ns + cp.wait_ns <= d.horizon_ns);

    // The achieved makespan respects analyze's static lower bound.
    let bound = analysis
        .path
        .as_ref()
        .expect("acyclic")
        .makespan_lower_bound;
    assert!(
        d.achieved_s() >= bound - 1e-12,
        "achieved {} s below bound {} s",
        d.achieved_s(),
        bound
    );

    // Gap accounting is conservative: busy + attributed waits fill the
    // audited lane-time exactly.
    let t = &d.totals;
    assert_eq!(
        t.busy_ns + t.comm_wait_ns + t.dependency_wait_ns + t.starvation_ns,
        t.lane_ns
    );
    // A 2×2 base stencil exchanges halos every iteration: the classifier
    // must attribute some wait to communication.
    assert!(t.comm_wait_ns > 0);
}

/// `fork` = R → {A, B}; B → {C, E}; A → C. Everything on node 0. B is an
/// order of magnitude slower than A, so the lane that finished A idles
/// ~16 ms waiting for B — a dependency wait, never comm (single node).
struct Fork;

const R: i32 = 0;
const A: i32 = 1;
const B: i32 = 2;
const C: i32 = 3;
const E: i32 = 4;

fn millis(p0: i32) -> u64 {
    match p0 {
        R | A => 2,
        B => 20,
        _ => 1,
    }
}

impl TaskClass for Fork {
    fn name(&self) -> &str {
        "fork"
    }
    fn node_of(&self, _p: Params) -> u32 {
        0
    }
    fn activation_count(&self, p: Params) -> usize {
        match p[0] {
            R => 0,
            C => 2,
            _ => 1,
        }
    }
    fn num_output_flows(&self, p: Params) -> usize {
        match p[0] {
            R | B => 2,
            A => 1,
            _ => 0,
        }
    }
    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        let dep = |flow, to, slot| OutputDep {
            flow,
            consumer: TaskKey::new(0, [to, 0, 0, 0]),
            slot,
        };
        match p[0] {
            R => vec![dep(0, A, 0), dep(1, B, 0)],
            A => vec![dep(0, C, 0)],
            B => vec![dep(0, C, 1), dep(1, E, 0)],
            _ => Vec::new(),
        }
    }
    fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        std::thread::sleep(Duration::from_millis(millis(p[0])));
        (0..self.num_output_flows(p))
            .map(|_| FlowData::sized(8))
            .collect()
    }
    fn output_bytes(&self, _p: Params, _flow: usize) -> usize {
        8
    }
    fn cost(&self, p: Params) -> f64 {
        millis(p[0]) as f64 * 1e-3
    }
}

fn fork_program() -> Program {
    let mut g = runtime::TaskGraph::new();
    g.add_class(Arc::new(Fork));
    Program {
        graph: Arc::new(g),
        roots: vec![TaskKey::new(0, [R, 0, 0, 0])],
        total_tasks: 5,
    }
}

#[test]
fn executors_agree_the_long_gap_is_dependency_wait() {
    let acfg = AnalyzeConfig::new();
    let dag = analyze::unfold(&fork_program(), &acfg);
    assert!(analyze::analyze_dag(&dag, &acfg).is_clean());

    // Wall-clock engine: two worker threads, real sleeps.
    let shared = run(&fork_program(), &RunConfig::shared_memory(2).with_trace());
    // Virtual-time engine: the cost model mirrors the sleeps.
    let sim = run(
        &fork_program(),
        &RunConfig::simulated(MachineProfile::nacl(), 1).with_trace(),
    );

    for (label, report, lanes) in [
        ("shared-memory", &shared, 2u32),
        ("simulated", &sim, MachineProfile::nacl().compute_threads()),
    ] {
        let trace = report.trace.as_ref().expect("trace requested");
        let d = insight::diagnose(trace, &dag, lanes);
        assert_eq!(d.joined_spans, 5, "{label}");

        // Single node: nothing can be comm-wait in either engine.
        assert_eq!(d.totals.comm_wait_ns, 0, "{label}: {:?}", d.gaps);

        // Both engines see the A-lane stall for B as a dependency wait:
        // a ≥10 ms gap ended by a task whose producer ran overlapping it.
        let long_dep = d
            .gaps
            .iter()
            .any(|g| g.cause == GapCause::DependencyWait && g.duration_ns() >= 10_000_000);
        assert!(
            long_dep,
            "{label}: no long dependency-wait gap in {:?}",
            d.gaps
        );

        // The realized critical path is R → B → (C or E): ~23–24 ms of
        // span time, dominated by B.
        let cp = d.critical_path.as_ref().expect("joined");
        assert!(cp.tasks >= 3, "{label}: {cp:?}");
        assert!(cp.busy_ns >= 20_000_000, "{label}: {cp:?}");
    }
}
