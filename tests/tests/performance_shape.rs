//! Performance-shape regression tests: the qualitative claims of the
//! paper's evaluation, pinned at reduced scale so CI catches model
//! regressions.

use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn paper_cfg(nodes: u32, ratio: f64, steps: usize, iters: u32) -> StencilConfig {
    StencilConfig::new(
        Problem::laplace(23_040),
        288,
        iters,
        ProcessGrid::square(nodes),
    )
    .with_steps(steps)
    .with_ratio(ratio)
    .with_profile(MachineProfile::nacl())
}

fn times(cfg: &StencilConfig, nodes: u32) -> (f64, f64) {
    let base = run(
        &build_base(cfg, false).program,
        &RunConfig::simulated(cfg.profile.clone(), nodes),
    )
    .makespan;
    let ca = run(
        &build_ca(cfg, false).program,
        &RunConfig::simulated(cfg.profile.clone(), nodes),
    )
    .makespan;
    (base, ca)
}

#[test]
fn ca_wins_when_kernel_is_fast_and_ties_when_slow() {
    // the paper's central claim, at 16 nodes
    let fast = paper_cfg(16, 0.3, 15, 10);
    let (base_fast, ca_fast) = times(&fast, 16);
    assert!(
        ca_fast < 0.8 * base_fast,
        "fast kernel: CA {ca_fast} vs base {base_fast}"
    );

    let slow = paper_cfg(16, 1.0, 15, 10);
    let (base_slow, ca_slow) = times(&slow, 16);
    let gap = (ca_slow / base_slow - 1.0).abs();
    assert!(gap < 0.08, "slow kernel gap = {gap}");
}

#[test]
fn strong_scaling_monotone_for_both_versions() {
    let mut last_base = f64::INFINITY;
    let mut last_ca = f64::INFINITY;
    for nodes in [4u32, 16, 64] {
        let cfg = paper_cfg(nodes, 1.0, 15, 10);
        let (base, ca) = times(&cfg, nodes);
        assert!(base < last_base, "base did not scale at {nodes} nodes");
        assert!(ca < last_ca, "CA did not scale at {nodes} nodes");
        last_base = base;
        last_ca = ca;
    }
}

#[test]
fn slow_network_magnifies_ca_advantage() {
    let profile = MachineProfile::slow_network();
    let cfg = StencilConfig::new(Problem::laplace(23_040), 288, 10, ProcessGrid::square(16))
        .with_steps(15)
        .with_ratio(0.6)
        .with_profile(profile.clone());
    let base = run(
        &build_base(&cfg, false).program,
        &RunConfig::simulated(profile.clone(), 16),
    )
    .makespan;
    let ca = run(
        &build_ca(&cfg, false).program,
        &RunConfig::simulated(profile, 16),
    )
    .makespan;
    assert!(ca < 0.75 * base, "slow network: CA {ca} vs base {base}");
}

#[test]
fn comm_thread_utilization_drops_with_ca() {
    let cfg = paper_cfg(16, 0.4, 15, 10);
    let base = run(
        &build_base(&cfg, false).program,
        &RunConfig::simulated(cfg.profile.clone(), 16),
    );
    let ca = run(
        &build_ca(&cfg, false).program,
        &RunConfig::simulated(cfg.profile.clone(), 16),
    );
    let base_comm: f64 =
        base.comm_utilization().iter().sum::<f64>() / base.comm_utilization().len() as f64;
    let ca_comm: f64 =
        ca.comm_utilization().iter().sum::<f64>() / ca.comm_utilization().len() as f64;
    assert!(
        ca_comm < base_comm,
        "comm utilization: CA {ca_comm} vs base {base_comm}"
    );
}
