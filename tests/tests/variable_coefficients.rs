//! Variable-coefficient stencils (the paper's Section III-A second
//! category): the operator's weights differ at every grid point. The
//! dataflow structure is unchanged — only the kernel and the cost model
//! (five extra coefficient loads per point) differ.

use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::{MachineProfile, StencilCostModel};
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use spmv::run_distributed;

fn cfg(n: usize, tile: usize, iters: u32, steps: usize) -> StencilConfig {
    StencilConfig::new(
        Problem::variable_diffusion(n, 4242),
        tile,
        iters,
        ProcessGrid::new(2, 2),
    )
    .with_steps(steps)
}

#[test]
fn variable_coefficients_really_vary() {
    let p = Problem::variable_diffusion(16, 1);
    let a = p.op.weights_at(0, 0);
    let b = p.op.weights_at(7, 3);
    assert_ne!(a, b);
    // diagonally dominant / contraction: weights sum to 1
    for (r, c) in [(0i64, 0i64), (5, 9), (15, 15)] {
        let w = p.op.weights_at(r, c);
        let sum = w.center + w.north + w.south + w.west + w.east;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w.north > 0.0 && w.south > 0.0 && w.west > 0.0 && w.east > 0.0);
    }
}

#[test]
fn base_matches_reference_bitwise_with_variable_coefficients() {
    let c = cfg(16, 4, 5, 1);
    let b = build_base(&c, true);
    run(&b.program, &RunConfig::shared_memory(3));
    let want = jacobi_reference(&c.problem, 5);
    assert_eq!(max_abs_diff(&b.store.unwrap().gather(), &want), 0.0);
}

#[test]
fn ca_matches_reference_bitwise_with_variable_coefficients() {
    for steps in [2usize, 3, 4] {
        let c = cfg(16, 4, 7, steps);
        let b = build_ca(&c, true);
        run(
            &b.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
        );
        let want = jacobi_reference(&c.problem, 7);
        assert_eq!(
            max_abs_diff(&b.store.unwrap().gather(), &want),
            0.0,
            "steps = {steps}"
        );
    }
}

#[test]
fn spmv_matches_reference_with_variable_coefficients() {
    let p = Problem::variable_diffusion(12, 7);
    let (x, _) = run_distributed(&p, 4, 6);
    let want = jacobi_reference(&p, 6);
    assert!(max_abs_diff(&x, &want) < 1e-13);
}

#[test]
fn variable_coefficients_slow_the_cost_model() {
    // five extra loads per point lower the modelled rate
    let constant = StencilCostModel::for_profile(&MachineProfile::nacl());
    let variable = constant.clone().with_variable_coefficients();
    assert!(variable.task_time(288, 288, 1.0) > 1.5 * constant.task_time(288, 288, 1.0));
    // and the arithmetic intensity drop makes CA pay off at higher ratios:
    // the compute per message shrinks, so this is conservative — just
    // check the simulated makespan grows accordingly
    let c = StencilConfig::new(
        Problem::variable_diffusion(2880, 1),
        288,
        5,
        ProcessGrid::new(2, 2),
    );
    let c_const = StencilConfig::new(Problem::laplace(2880), 288, 5, ProcessGrid::new(2, 2));
    let t_var = run(
        &build_base(&c, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    )
    .makespan;
    let t_const = run(
        &build_base(&c_const, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    )
    .makespan;
    assert!(t_var > 1.5 * t_const, "var {t_var} vs const {t_const}");
}
