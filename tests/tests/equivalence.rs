//! The end-to-end correctness story: every execution path — sequential
//! reference, SpMV baseline, base dataflow, CA dataflow, on both executors
//! — computes the same field.

use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff};
use integration::scrambled_config;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};
use spmv::run_distributed;

#[test]
fn all_five_paths_agree() {
    let cfg = scrambled_config(24, 4, 8, ProcessGrid::new(2, 2), 3, 99);
    let reference = jacobi_reference(&cfg.problem, 8);

    // SpMV baseline (rounding-level agreement: different accumulation order)
    let (spmv_field, _) = run_distributed(&cfg.problem, 6, 8);
    assert!(max_abs_diff(&spmv_field, &reference) < 1e-13);

    // base, real executor
    let b = build_base(&cfg, true);
    run(&b.program, &RunConfig::shared_memory(3));
    assert_eq!(max_abs_diff(&b.store.unwrap().gather(), &reference), 0.0);

    // base, simulated executor
    let b = build_base(&cfg, true);
    run(
        &b.program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    assert_eq!(max_abs_diff(&b.store.unwrap().gather(), &reference), 0.0);

    // CA, real executor
    let c = build_ca(&cfg, true);
    run(&c.program, &RunConfig::shared_memory(3));
    assert_eq!(max_abs_diff(&c.store.unwrap().gather(), &reference), 0.0);

    // CA, simulated executor
    let c = build_ca(&cfg, true);
    run(
        &c.program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    assert_eq!(max_abs_diff(&c.store.unwrap().gather(), &reference), 0.0);
}

#[test]
fn scheduler_policies_do_not_change_numerics() {
    use runtime::SchedulerPolicy;
    let cfg = scrambled_config(16, 4, 6, ProcessGrid::new(2, 2), 2, 5);
    let reference = jacobi_reference(&cfg.problem, 6);
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Lifo,
        SchedulerPolicy::Priority,
    ] {
        let c = build_ca(&cfg, true);
        run(
            &c.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4)
                .with_bodies()
                .with_policy(policy),
        );
        assert_eq!(
            max_abs_diff(&c.store.unwrap().gather(), &reference),
            0.0,
            "{policy:?}"
        );
    }
}

#[test]
fn node_count_does_not_change_numerics() {
    for (grid, nodes) in [
        (ProcessGrid::new(1, 1), 1u32),
        (ProcessGrid::new(2, 2), 4),
        (ProcessGrid::new(4, 4), 16),
    ] {
        let cfg = scrambled_config(32, 4, 5, grid, 2, 31);
        let reference = jacobi_reference(&cfg.problem, 5);
        let c = build_ca(&cfg, true);
        run(
            &c.program,
            &RunConfig::simulated(MachineProfile::nacl(), nodes).with_bodies(),
        );
        assert_eq!(
            max_abs_diff(&c.store.unwrap().gather(), &reference),
            0.0,
            "{nodes} nodes"
        );
    }
}

#[test]
fn machine_profile_does_not_change_numerics() {
    // cost models change timing, never values
    for profile in [
        MachineProfile::nacl(),
        MachineProfile::stampede2(),
        MachineProfile::slow_network(),
    ] {
        let cfg =
            scrambled_config(16, 4, 7, ProcessGrid::new(2, 2), 3, 8).with_profile(profile.clone());
        let reference = jacobi_reference(&cfg.problem, 7);
        let c = build_ca(&cfg, true);
        run(&c.program, &RunConfig::simulated(profile, 4).with_bodies());
        assert_eq!(max_abs_diff(&c.store.unwrap().gather(), &reference), 0.0);
    }
}
