//! The simulator is deterministic: identical runs produce identical
//! makespans, message counts and traces.

use ca_stencil::{build_base, build_ca};
use integration::scrambled_config;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

#[test]
fn repeated_simulations_are_identical() {
    let cfg = scrambled_config(32, 4, 10, ProcessGrid::new(2, 2), 3, 17);
    let run = || {
        let b = build_ca(&cfg, false);
        let r = run(
            &b.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4).with_trace(),
        );
        (
            r.makespan,
            r.remote_messages(),
            r.remote_bytes(),
            r.local_flows(),
            r.trace.unwrap().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn base_and_ca_makespans_are_stable_across_reruns() {
    let cfg = scrambled_config(32, 4, 6, ProcessGrid::new(2, 2), 2, 3);
    let base1 = run(
        &build_base(&cfg, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    )
    .makespan;
    let base2 = run(
        &build_base(&cfg, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    )
    .makespan;
    assert_eq!(base1, base2);
}

#[test]
fn body_execution_does_not_change_timing() {
    // performance-only and data-carrying runs see identical virtual time:
    // the cost model, not the body, sets task durations
    let cfg = scrambled_config(16, 4, 5, ProcessGrid::new(2, 2), 2, 23);
    let perf = run(
        &build_ca(&cfg, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    );
    let data = run(
        &build_ca(&cfg, true).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    assert_eq!(perf.makespan, data.makespan);
    assert_eq!(perf.remote_messages(), data.remote_messages());
    // message bytes match too: FlowData::values sizes equal output_bytes
    assert_eq!(perf.remote_bytes(), data.remote_bytes());
}
