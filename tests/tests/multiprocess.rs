//! The distributed logic under true concurrency: the multi-process-
//! semantics executor runs the stencil with real per-node thread pools
//! and channel-borne cross-node messages, so arrival order is genuinely
//! racy — and the result must still match the sequential reference bit
//! for bit.

use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn cfg(steps: usize) -> StencilConfig {
    StencilConfig::new(Problem::scrambled(24, 321), 4, 9, ProcessGrid::new(2, 2)).with_steps(steps)
}

#[test]
fn base_matches_reference_under_races() {
    for trial in 0..3 {
        let c = cfg(1);
        let b = build_base(&c, true);
        let r = run(&b.program, &RunConfig::multi_process(4, 2));
        assert_eq!(r.tasks_executed, 36 * 10);
        let want = jacobi_reference(&c.problem, 9);
        assert_eq!(
            max_abs_diff(&b.store.unwrap().gather(), &want),
            0.0,
            "trial {trial}"
        );
    }
}

#[test]
fn ca_matches_reference_under_races() {
    for steps in [2usize, 3] {
        let c = cfg(steps);
        let b = build_ca(&c, true);
        run(&b.program, &RunConfig::multi_process(4, 2));
        let want = jacobi_reference(&c.problem, 9);
        assert_eq!(
            max_abs_diff(&b.store.unwrap().gather(), &want),
            0.0,
            "steps {steps}"
        );
    }
}

#[test]
fn cross_node_flow_count_matches_simulator() {
    let c = cfg(3);
    let mp = run(&build_ca(&c, true).program, &RunConfig::multi_process(4, 2));
    let sim = run(
        &build_ca(&c, false).program,
        &RunConfig::simulated(MachineProfile::nacl(), 4),
    );
    assert_eq!(mp.remote_messages(), sim.remote_messages());
}
