//! Property tests over the whole stack: for arbitrary geometry, step size
//! and iteration count, the CA dataflow over the simulated cluster equals
//! the sequential reference bit for bit, and the analytic message
//! prediction matches the simulator's counters.

use ca_stencil::metrics::{predict_base, predict_ca};
use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use proptest::prelude::*;
use runtime::{run, RunConfig};

/// Random but well-formed configurations: tiles divide the grid, tile
/// counts divide the node grid, steps ≤ tile.
fn configs() -> impl Strategy<Value = (StencilConfig, u32)> {
    (
        2usize..=4, // tiles per node per dimension
        1u32..=2,   // node grid side
        2usize..=5, // tile size
        1usize..=4, // steps (clamped to tile below)
        1u32..=9,   // iterations
        0u64..1000, // seed
    )
        .prop_map(|(tpn, side, tile, steps, iters, seed)| {
            let tiles = tpn * side as usize;
            let n = tiles * tile;
            let grid = ProcessGrid::new(side, side);
            let cfg = StencilConfig::new(Problem::scrambled(n, seed), tile, iters, grid)
                .with_steps(steps.min(tile));
            (cfg, side * side)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ca_equals_reference_bitwise((cfg, nodes) in configs()) {
        let build = build_ca(&cfg, true);
        analyze::assert_clean(&build.program);
        run(
            &build.program,
            &RunConfig::simulated(MachineProfile::nacl(), nodes).with_bodies(),
        );
        let got = build.store.unwrap().gather();
        let want = jacobi_reference(&cfg.problem, cfg.iterations);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn base_equals_reference_bitwise((cfg, nodes) in configs()) {
        let build = build_base(&cfg, true);
        analyze::assert_clean(&build.program);
        run(
            &build.program,
            &RunConfig::simulated(MachineProfile::nacl(), nodes).with_bodies(),
        );
        let got = build.store.unwrap().gather();
        let want = jacobi_reference(&cfg.problem, cfg.iterations);
        prop_assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn message_predictions_match_simulator((cfg, nodes) in configs()) {
        let geo = cfg.geometry();
        let base = run(
            &build_base(&cfg, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), nodes),
        );
        let pb = predict_base(&geo, cfg.iterations);
        prop_assert_eq!(base.remote_messages(), pb.messages);
        prop_assert_eq!(base.remote_bytes(), pb.bytes);

        let ca = run(
            &build_ca(&cfg, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), nodes),
        );
        let pc = predict_ca(&geo, cfg.iterations, cfg.steps);
        prop_assert_eq!(ca.remote_messages(), pc.messages);
        prop_assert_eq!(ca.remote_bytes(), pc.bytes);
    }

    #[test]
    fn spmv_matches_reference((cfg, _) in configs()) {
        let (x, _) = spmv::run_distributed(&cfg.problem, 4, cfg.iterations);
        let want = jacobi_reference(&cfg.problem, cfg.iterations);
        let diff = max_abs_diff(&x, &want);
        prop_assert!(diff < 1e-12, "diff = {diff}");
    }
}
