//! The observability layer end to end: the Chrome `trace_event` export
//! round-trips losslessly, its numbers agree with `runtime::profiling`,
//! and the three executors produce the same `obs` counters and task
//! spans for an identical base-stencil run.

use ca_stencil::{build_base, kind_names, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::KIND_COMM;
use runtime::{profiling, run, RunConfig, RunReport};

fn cfg() -> StencilConfig {
    // 4×4 tiles on a 2×2 grid, 3 iterations: 16 × (3 + init) = 64 tasks
    StencilConfig::new(Problem::laplace(16), 4, 3, ProcessGrid::new(2, 2))
}

fn sim_config() -> RunConfig {
    RunConfig::simulated(MachineProfile::nacl(), 4)
        .with_trace()
        .with_kind_names(kind_names())
}

#[test]
fn chrome_trace_round_trips_through_export() {
    let report = run(&build_base(&cfg(), false).program, &sim_config());
    let trace = report.trace.expect("trace requested");
    assert_eq!(trace.task_spans().count() as u64, report.tasks_executed);

    let json = obs::chrome::to_chrome_json(&trace);
    let back = obs::chrome::from_chrome_json(&json).expect("chrome JSON parses");

    // span-for-span identical, including the kind-name table
    assert_eq!(back.spans.len(), trace.spans.len());
    assert_eq!(back.spans, trace.spans);
    assert_eq!(back.kinds, trace.kinds);
    assert_eq!(back.kinds.get(&KIND_COMM).map(String::as_str), Some("comm"));

    // timestamps are monotonic by start and well-formed
    for w in back.spans.windows(2) {
        assert!(w[0].start_ns <= w[1].start_ns, "spans sorted by start");
    }
    for s in &back.spans {
        assert!(s.end_ns >= s.start_ns, "span ends after it starts");
    }

    // the parsed trace reproduces profiling's occupancy numbers
    let lanes = MachineProfile::nacl().compute_threads();
    let horizon = trace.horizon_ns();
    for node in trace.nodes() {
        let want = profiling::profile_node(&trace, node, lanes, horizon);
        let got = profiling::profile_node(&back, node, lanes, horizon);
        assert!((want.occupancy - got.occupancy).abs() < 1e-12);
        assert_eq!(want.kinds.len(), got.kinds.len());
    }
    // and the report's own occupancy column came from the same spans
    let report2 = run(&build_base(&cfg(), false).program, &sim_config());
    assert_eq!(report.node_occupancy, report2.node_occupancy);
}

#[test]
fn all_executors_agree_on_base_stencil_spans() {
    let program_for = || build_base(&cfg(), true).program;
    let shared = run(&program_for(), &RunConfig::shared_memory(3).with_trace());
    let mp = run(&program_for(), &RunConfig::multi_process(4, 2).with_trace());
    let sim = run(
        &program_for(),
        &RunConfig::simulated(MachineProfile::nacl(), 4)
            .with_bodies()
            .with_trace(),
    );

    let task_spans = |r: &RunReport| {
        r.trace
            .as_ref()
            .expect("trace requested")
            .task_spans()
            .count() as u64
    };
    for r in [&shared, &mp, &sim] {
        assert_eq!(r.tasks_executed, 64);
        assert_eq!(r.counter(obs::names::TASKS_EXECUTED), 64);
        assert_eq!(task_spans(r), 64, "one task span per task in {:?}", r.mode);
    }

    // per-kind task-span counts agree across all three engines
    let kind_counts = |r: &RunReport| {
        let mut counts: Vec<(u32, usize)> = r
            .trace
            .as_ref()
            .unwrap()
            .count_by_kind()
            .into_iter()
            .filter(|(kind, _)| *kind != KIND_COMM)
            .collect();
        counts.sort_unstable();
        counts
    };
    assert_eq!(kind_counts(&shared), kind_counts(&mp));
    assert_eq!(kind_counts(&mp), kind_counts(&sim));

    // the message-bearing engines agree on cross-node traffic
    assert_eq!(mp.remote_messages(), sim.remote_messages());
    assert_eq!(
        mp.counter(obs::names::MESSAGES_SENT),
        sim.counter(obs::names::MESSAGES_SENT)
    );
}
