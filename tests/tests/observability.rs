//! The observability layer end to end: the Chrome `trace_event` export
//! round-trips losslessly, its numbers agree with `runtime::profiling`,
//! and the three executors produce the same `obs` counters and task
//! spans for an identical base-stencil run.

use ca_stencil::{build_base, kind_names, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::KIND_COMM;
use runtime::{profiling, run, RunConfig, RunReport};

fn cfg() -> StencilConfig {
    // 4×4 tiles on a 2×2 grid, 3 iterations: 16 × (3 + init) = 64 tasks
    StencilConfig::new(Problem::laplace(16), 4, 3, ProcessGrid::new(2, 2))
}

fn sim_config() -> RunConfig {
    RunConfig::simulated(MachineProfile::nacl(), 4)
        .with_trace()
        .with_kind_names(kind_names())
}

#[test]
fn chrome_trace_round_trips_through_export() {
    let report = run(&build_base(&cfg(), false).program, &sim_config());
    let trace = report.trace.expect("trace requested");
    assert_eq!(trace.task_spans().count() as u64, report.tasks_executed);

    let json = obs::chrome::to_chrome_json(&trace);
    let back = obs::chrome::from_chrome_json(&json).expect("chrome JSON parses");

    // span-for-span identical, including the kind-name table
    assert_eq!(back.spans.len(), trace.spans.len());
    assert_eq!(back.spans, trace.spans);
    assert_eq!(back.kinds, trace.kinds);
    assert_eq!(back.kinds.get(&KIND_COMM).map(String::as_str), Some("comm"));

    // timestamps are monotonic by start and well-formed
    for w in back.spans.windows(2) {
        assert!(w[0].start_ns <= w[1].start_ns, "spans sorted by start");
    }
    for s in &back.spans {
        assert!(s.end_ns >= s.start_ns, "span ends after it starts");
    }

    // the parsed trace reproduces profiling's occupancy numbers
    let lanes = MachineProfile::nacl().compute_threads();
    let horizon = trace.horizon_ns();
    for node in trace.nodes() {
        let want = profiling::profile_node(&trace, node, lanes, horizon);
        let got = profiling::profile_node(&back, node, lanes, horizon);
        assert!((want.occupancy - got.occupancy).abs() < 1e-12);
        assert_eq!(want.kinds.len(), got.kinds.len());
    }
    // and the report's own occupancy column came from the same spans
    let report2 = run(&build_base(&cfg(), false).program, &sim_config());
    assert_eq!(report.node_occupancy, report2.node_occupancy);
}

#[test]
fn all_executors_agree_on_base_stencil_spans() {
    let program_for = || build_base(&cfg(), true).program;
    let shared = run(&program_for(), &RunConfig::shared_memory(3).with_trace());
    let mp = run(&program_for(), &RunConfig::multi_process(4, 2).with_trace());
    let sim = run(
        &program_for(),
        &RunConfig::simulated(MachineProfile::nacl(), 4)
            .with_bodies()
            .with_trace(),
    );

    let task_spans = |r: &RunReport| {
        r.trace
            .as_ref()
            .expect("trace requested")
            .task_spans()
            .count() as u64
    };
    for r in [&shared, &mp, &sim] {
        assert_eq!(r.tasks_executed, 64);
        assert_eq!(r.counter(obs::names::TASKS_EXECUTED), 64);
        assert_eq!(task_spans(r), 64, "one task span per task in {:?}", r.mode);
    }

    // per-kind task-span counts agree across all three engines
    let kind_counts = |r: &RunReport| {
        let mut counts: Vec<(u32, usize)> = r
            .trace
            .as_ref()
            .unwrap()
            .count_by_kind()
            .into_iter()
            .filter(|(kind, _)| *kind != KIND_COMM)
            .collect();
        counts.sort_unstable();
        counts
    };
    assert_eq!(kind_counts(&shared), kind_counts(&mp));
    assert_eq!(kind_counts(&mp), kind_counts(&sim));

    // the message-bearing engines agree on cross-node traffic
    assert_eq!(mp.remote_messages(), sim.remote_messages());
    assert_eq!(
        mp.counter(obs::names::MESSAGES_SENT),
        sim.counter(obs::names::MESSAGES_SENT)
    );
}

/// The tentpole identity: for every scheme, the per-peer communication
/// matrix built from traced `MsgSpan`s carries *exactly* the message and
/// byte counts `analyze` derives statically from the unfolded DAG — no
/// transfer is missed, invented, or double-counted by the tracer.
#[test]
fn comm_matrix_matches_static_edge_accounting_for_every_scheme() {
    use ca_stencil::{build_base_dtd, build_ca, build_pa2};
    let scfg = cfg().with_steps(2);
    let lanes = MachineProfile::nacl().compute_threads();
    for (name, program) in [
        ("base", build_base(&scfg, false).program),
        ("ca", build_ca(&scfg, false).program),
        ("pa2", build_pa2(&scfg, false).program),
        ("dtd", build_base_dtd(&scfg)),
    ] {
        let dag = analyze::unfold(
            &program,
            &analyze::AnalyzeConfig::new()
                .with_lanes(lanes)
                .without_races(),
        );
        let expected = analyze::peer_matrix(&dag);
        let report = run(&program, &sim_config());
        let trace = report.trace.as_ref().expect("trace requested");
        assert_eq!(trace.dropped_msgs, 0, "{name}: lossy msg trace");
        let observed = trace.comm_matrix();
        analyze::verify_comm_matrix(&expected, &observed).unwrap_or_else(|e| panic!("{name}: {e}"));
        // and both agree with the simulator's own network accounting
        let bytes: u64 = observed.peers.values().map(|p| p.bytes).sum();
        let msgs: u64 = observed.peers.values().map(|p| p.messages).sum();
        assert_eq!(bytes, report.remote_bytes(), "{name}");
        assert_eq!(msgs, report.remote_messages(), "{name}");
    }
}

/// Overflow accounting: a deliberately tiny tracer ring must *count*
/// everything it cannot keep. Against a complete reference run of the
/// same deterministic program, recorded + dropped reconciles exactly for
/// both span lanes and message lanes, occupancy under-reports (never
/// over-reports), and the exact-identity comm check refuses the lossy
/// trace instead of passing it by luck.
#[test]
fn tiny_ring_drops_are_counted_and_reconcile_exactly() {
    let program = build_base(&cfg(), false).program;
    let complete = run(&program, &sim_config());
    let lossy = run(&program, &sim_config().with_ring_capacity(4));
    let complete_bytes = complete.remote_bytes();
    let full = complete.trace.expect("trace requested");
    let thin = lossy.trace.expect("trace requested");
    assert_eq!(full.dropped, 0);
    assert!(thin.dropped > 0, "capacity 4 must overflow span lanes");
    assert!(thin.dropped_msgs > 0, "capacity 4 must overflow msg lanes");

    // Attempts are identical (deterministic run), so kept + dropped on
    // the lossy side must equal the complete side's record counts.
    assert_eq!(
        thin.spans.len() as u64 + thin.dropped,
        full.spans.len() as u64
    );
    assert_eq!(
        thin.msgs.len() as u64 + thin.dropped_msgs,
        full.msgs.len() as u64
    );
    // The comm matrix surfaces its own incompleteness.
    assert_eq!(thin.comm_matrix().dropped, thin.dropped_msgs);
    let thin_bytes: u64 = thin.comm_matrix().peers.values().map(|p| p.bytes).sum();
    assert!(thin_bytes < complete_bytes);

    // Fig-10 style totals only lose time, never invent it.
    let lanes = MachineProfile::nacl().compute_threads();
    let horizon = full.horizon_ns();
    for node in full.nodes() {
        assert!(
            thin.occupancy(node, lanes, horizon) <= full.occupancy(node, lanes, horizon) + 1e-12,
            "node {node} over-reports occupancy from a lossy trace"
        );
    }

    // And the exact-identity gate refuses a lower-bound matrix.
    let dag = analyze::unfold(
        &program,
        &analyze::AnalyzeConfig::new()
            .with_lanes(lanes)
            .without_races(),
    );
    let expected = analyze::peer_matrix(&dag);
    let err = analyze::verify_comm_matrix(&expected, &thin.comm_matrix())
        .expect_err("a lossy matrix must not pass the exact-byte identity");
    assert!(err.contains("dropped"), "{err}");
}
