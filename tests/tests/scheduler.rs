//! The pluggable scheduler API across crates: portfolio determinism on
//! the simulated executor, FIFO-by-seq tie-breaking for every policy, and
//! cross-executor agreement on dispatch order under a fixed scheduler.

use ca_stencil::build_ca;
use integration::scrambled_config;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::ready_queue::ReadyQueue;
use runtime::{
    run, DtdBuilder, Program, ReadyTask, RunConfig, SchedContext, SchedulerHandle, SelectMode,
    TaskKey,
};

/// Same policy + same config ⇒ bit-identical simulated reports: makespan,
/// counters, and the full span trace, for every portfolio scheduler.
#[test]
fn every_portfolio_scheduler_is_deterministic_in_simulation() {
    let cfg = scrambled_config(16, 4, 6, ProcessGrid::new(2, 2), 2, 5);
    let program = build_ca(&cfg, false).program;
    for sched in SchedulerHandle::portfolio() {
        let sim = || {
            run(
                &program,
                &RunConfig::simulated(MachineProfile::nacl(), 4)
                    .with_scheduler(sched.clone())
                    .with_trace(),
            )
        };
        let (a, b) = (sim(), sim());
        assert_eq!(a.scheduler, sched.name());
        assert_eq!(b.scheduler, sched.name());
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "{}: {} vs {}",
            sched.name(),
            a.makespan,
            b.makespan
        );
        assert_eq!(a.tasks_executed, b.tasks_executed, "{}", sched.name());
        assert_eq!(
            a.counter(obs::names::MESSAGES_SENT),
            b.counter(obs::names::MESSAGES_SENT),
            "{}",
            sched.name()
        );
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.spans, tb.spans, "{}: traces diverge", sched.name());
    }
}

/// Six independent equal-cost tasks: every rank-mode policy ranks them
/// identically, so the ready queue must fall back to FIFO-by-seq; only
/// LIFO (whose contract *is* reversal) pops in reverse.
#[test]
fn equal_ranks_resolve_fifo_by_seq_for_every_policy() {
    let mut b = DtdBuilder::new();
    for _ in 0..6 {
        b.insert(0, 1e-3, &[]);
    }
    let program = b.build();
    let keys: Vec<TaskKey> = (0..6).map(|i| TaskKey::new(0, [i, 0, 0, 0])).collect();
    for sched in SchedulerHandle::portfolio() {
        let selector = sched.instance(&SchedContext {
            program: &program,
            profile: None,
            nodes: 1,
            lanes: 1,
        });
        let lifo = selector.mode() == SelectMode::Lifo;
        let mut q = ReadyQueue::new(selector);
        for &key in &keys {
            q.push(ReadyTask {
                key,
                inputs: Vec::new(),
            });
        }
        let popped: Vec<TaskKey> = std::iter::from_fn(|| q.pop()).map(|t| t.key).collect();
        let expected: Vec<TaskKey> = if lifo {
            keys.iter().rev().copied().collect()
        } else {
            keys.clone()
        };
        assert_eq!(popped, expected, "{}", sched.name());
    }
}

/// One root fanning out to five children with distinct costs, one worker
/// lane: the ready-queue order fully determines execution order, so a
/// fixed scheduler must produce the same task-start sequence on the
/// simulated and shared-memory executors (timestamps differ — virtual vs
/// wall clock — but the order may not).
#[test]
fn fixed_scheduler_orders_dispatch_identically_across_executors() {
    // Children 1..=5 cost 1, 5, 3, 2, 4 ms: insertion order differs from
    // rank order, so FIFO and HEFT must disagree with each other while
    // each agrees with itself across executors.
    let build = || {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 1e-4, &[]);
        for cost_ms in [1.0, 5.0, 3.0, 2.0, 4.0] {
            b.insert(0, cost_ms * 1e-3, &[root]);
        }
        b.build()
    };
    let ids: Vec<u64> = (0..6)
        .map(|i| TaskKey::new(0, [i, 0, 0, 0]).instance_id())
        .collect();
    // localhost(2, ..) reserves one core for comm, leaving 1 worker lane —
    // matching shared_memory(1)'s single worker.
    let profile = MachineProfile::localhost(2, 40e9, 10e9);
    for (sched, expected) in [
        (
            SchedulerHandle::by_name("fifo").unwrap(),
            vec![0, 1, 2, 3, 4, 5],
        ),
        // HEFT rank of a leaf is its own cost: descending-cost order.
        (
            SchedulerHandle::by_name("heft").unwrap(),
            vec![0, 2, 5, 3, 4, 1],
        ),
    ] {
        for cfg in [
            RunConfig::simulated(profile.clone(), 1),
            RunConfig::shared_memory(1),
        ] {
            let program: Program = build();
            let report = run(&program, &cfg.with_scheduler(sched.clone()).with_trace());
            let order = start_order(&report.trace.unwrap(), &ids);
            assert_eq!(order, expected, "{} on {:?}", sched.name(), report.mode);
        }
    }
}

/// The stealing path respects the scheduler contract at dependency
/// barriers: with one task per worker per layer and all-to-all edges
/// between layers, no executor — simulated central queue or real
/// work-stealing deques — may start a layer before the previous layer
/// completed, so the per-layer *sets* of the start order agree across
/// executors even though stealing scrambles order within a layer.
#[test]
fn stealing_dispatch_preserves_layer_sets_across_executors() {
    const WORKERS: usize = 4;
    const LAYERS: usize = 6;
    let build = || {
        let mut b = DtdBuilder::new();
        let mut prev: Vec<_> = (0..WORKERS).map(|_| b.insert(0, 1e-4, &[])).collect();
        for _ in 1..LAYERS {
            prev = (0..WORKERS).map(|_| b.insert(0, 1e-4, &prev)).collect();
        }
        b.build()
    };
    let ids: Vec<u64> = (0..WORKERS * LAYERS)
        .map(|i| TaskKey::new(0, [i as i32, 0, 0, 0]).instance_id())
        .collect();
    // localhost(5, ..) reserves one core for comm, leaving 4 worker lanes.
    let profile = MachineProfile::localhost(WORKERS as u32 + 1, 40e9, 10e9);
    let sched = SchedulerHandle::by_name("fifo").unwrap();
    for cfg in [
        RunConfig::simulated(profile.clone(), 1),
        RunConfig::shared_memory(WORKERS),
    ] {
        let program: Program = build();
        let report = run(&program, &cfg.with_scheduler(sched.clone()).with_trace());
        let order = start_order(&report.trace.unwrap(), &ids);
        assert_eq!(order.len(), WORKERS * LAYERS, "{:?}", report.mode);
        for layer in 0..LAYERS {
            let mut chunk: Vec<usize> = order[layer * WORKERS..(layer + 1) * WORKERS].to_vec();
            chunk.sort_unstable();
            let expect: Vec<usize> = (layer * WORKERS..(layer + 1) * WORKERS).collect();
            assert_eq!(
                chunk, expect,
                "layer {layer} set diverges on {:?}",
                report.mode
            );
        }
    }
}

/// A fan wider than the local-deque capacity on the real executor: the
/// root's batch release overflows into the shared injector, idle workers
/// drain it and then steal the owner's remainder. Every task still runs
/// exactly once, and steals are actually observed (retried a few times —
/// steal timing depends on the OS scheduler).
#[test]
fn steal_heavy_fan_runs_every_task_exactly_once() {
    const WIDTH: usize = 2048;
    let build = || {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        for _ in 0..WIDTH {
            b.insert(0, 0.0, &[root]);
        }
        b.build()
    };
    for attempt in 0..25 {
        let program: Program = build();
        let mut report = run(&program, &RunConfig::shared_memory(4).with_trace());
        assert_eq!(report.tasks_executed, (WIDTH + 1) as u64);
        let trace = report.trace.take().unwrap();
        let mut seen: Vec<u64> = trace
            .spans
            .iter()
            .filter_map(|s| s.task_instance())
            .collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "a task span was recorded twice");
        assert_eq!(seen.len(), WIDTH + 1, "a task span went missing");
        assert!(
            report.counter(obs::names::OVERFLOW_PUSHES) > 0,
            "a {WIDTH}-wide fan must overflow the local deque"
        );
        if report.counter(obs::names::STEALS) > 0 {
            return; // stealing path exercised and conserved every task
        }
        eprintln!("attempt {attempt}: no steals observed, retrying");
    }
    panic!("no run out of 25 ever recorded a steal");
}

/// Task ids in start order: stable sort by start time, so spans sharing a
/// wall-clock timestamp keep the single worker lane's recorded order.
fn start_order(trace: &obs::Trace, ids: &[u64]) -> Vec<usize> {
    let mut spans: Vec<&obs::SpanRecord> = trace
        .spans
        .iter()
        .filter(|s| s.task_instance().is_some())
        .collect();
    spans.sort_by_key(|s| s.start_ns);
    spans
        .iter()
        .map(|s| {
            ids.iter()
                .position(|&id| id == s.task)
                .expect("span joins a known task")
        })
        .collect()
}
