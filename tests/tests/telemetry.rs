//! The live telemetry pipeline end to end: on a deterministic simulated
//! stencil run, the occupancy a concurrent observer reconstructs from
//! the live sample stream equals the post-hoc Figure-10 occupancy
//! computed from the drained trace; sampling does not perturb the
//! virtual-time results; and the tracer's measured self-overhead stays
//! inside its budget on every executor.

use ca_stencil::{build_base, kind_names, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::{Live, TracerOverhead};
use runtime::{profiling, run, RunConfig};

fn program() -> runtime::Program {
    // 4×4 tiles on a 2×2 grid, 6 iterations — enough windows that the
    // live average is a real aggregation, small enough to stay quick.
    let cfg = StencilConfig::new(Problem::laplace(16), 4, 6, ProcessGrid::new(2, 2));
    build_base(&cfg, false).program
}

fn sim_config() -> RunConfig {
    RunConfig::simulated(MachineProfile::nacl(), 4)
        .with_trace()
        .with_kind_names(kind_names())
}

/// Live window-averaged occupancy converges to (here: exactly equals)
/// the post-hoc profile of the same run, because the simulator's sample
/// windows tile `[0, makespan]` and busy time is clipped span overlap
/// in both computations.
#[test]
fn live_occupancy_agrees_with_posthoc_fig10_profile() {
    let live = Live::new();
    let report = run(
        &program(),
        &sim_config().with_live(live.clone()).with_sampling(20_000),
    );
    assert!(live.len() > 4, "expected several sample windows per node");

    let trace = report.trace.as_ref().expect("trace requested");
    let lanes = MachineProfile::nacl().compute_threads();
    let horizon = trace.horizon_ns();
    for node in 0..4u32 {
        let posthoc = profiling::profile_node(trace, node, lanes, horizon).occupancy;
        let live_avg = live.mean_occupancy(node);
        assert!(
            (live_avg - posthoc).abs() < 1e-9,
            "node {node}: live {live_avg} vs post-hoc {posthoc}"
        );
        // The report's own occupancy column is the same quantity.
        assert!((report.node_occupancy[node as usize] - live_avg).abs() < 1e-9);
    }
}

/// The sampler only reads simulator state, so switching it on changes
/// nothing about the virtual-time outcome.
#[test]
fn sampling_does_not_change_the_simulated_run() {
    let plain = run(&program(), &sim_config());
    let sampled = run(&program(), &sim_config().with_sampling(20_000));
    assert_eq!(plain.makespan, sampled.makespan);
    assert_eq!(plain.node_occupancy, sampled.node_occupancy);
    assert_eq!(plain.tasks_executed, sampled.tasks_executed);
    assert!(plain.samples.is_empty());
    assert!(!sampled.samples.is_empty());
}

/// Every executor measures its tracer overhead, and on these small runs
/// streaming telemetry stays far inside the 2 % budget.
#[test]
fn tracer_overhead_is_within_budget_on_every_executor() {
    let lanes = MachineProfile::nacl().compute_threads() as usize;
    for (label, cfg) in [
        ("simulated", sim_config().with_sampling(20_000)),
        (
            "shared-memory",
            RunConfig::shared_memory(lanes)
                .with_trace()
                .with_sampling(1_000_000),
        ),
        (
            "multi-process",
            RunConfig::multi_process(4, 2)
                .with_trace()
                .with_sampling(1_000_000),
        ),
    ] {
        // The real engines execute task bodies, so their programs carry
        // data; the shared-memory engine additionally needs everything
        // on node 0.
        let prog = match label {
            "simulated" => program(),
            "shared-memory" => {
                let c = StencilConfig::new(Problem::laplace(16), 4, 6, ProcessGrid::new(1, 1));
                build_base(&c, true).program
            }
            _ => {
                let c = StencilConfig::new(Problem::laplace(16), 4, 6, ProcessGrid::new(2, 2));
                build_base(&c, true).program
            }
        };
        let report = run(&prog, &cfg);
        let o = &report.overhead;
        assert!(o.events > 0, "{label}: no events accounted");
        assert!(o.lane_time_ns > 0, "{label}: no lane time");
        assert!(
            o.within_budget(),
            "{label}: overhead {:.4} % over the {:.0} % budget ({o:?})",
            100.0 * o.fraction(),
            100.0 * TracerOverhead::BUDGET_FRACTION,
        );
        // Nothing was dropped on the rings during any of these runs.
        assert_eq!(report.trace.as_ref().unwrap().dropped, 0, "{label}");
    }
}
