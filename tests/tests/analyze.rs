//! The static analyzer vs the whole stack: every scheme's program must be
//! analysis-clean across geometries, the static communication accounting
//! must match the simulator's dynamic counters *exactly*, and no simulated
//! run may beat the analyzer's makespan lower bound.

use analyze::{analyze_program, AnalyzeConfig, DataflowMode, Diagnostic, RectSet};
use ca_stencil::metrics::predict_ca_redundant_flops;
use ca_stencil::{
    build_base, build_base_dtd, build_ca, build_ca_shrunk, build_pa2, Corner, Problem,
    StencilConfig,
};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::names;
use proptest::prelude::*;
use runtime::{run, Program, Rect, RunConfig};

fn cfg(n: usize, tile: usize, steps: usize, side: u32, iters: u32) -> StencilConfig {
    StencilConfig::new(
        Problem::laplace(n),
        tile,
        iters,
        ProcessGrid::new(side, side),
    )
    .with_steps(steps)
}

/// Several (grid, tile, s) points per scheme; each must produce zero
/// diagnostics.
#[test]
fn all_schemes_are_analysis_clean() {
    let points = [
        (16, 4, 1, 1u32, 3u32),
        (32, 4, 2, 2, 5),
        (48, 8, 4, 2, 7),
        (36, 6, 3, 3, 4),
    ];
    for (n, tile, steps, side, iters) in points {
        let c = cfg(n, tile, steps, side, iters);
        let label = format!("n={n} tile={tile} s={steps} side={side}");
        let schemes: Vec<(&str, Program)> = vec![
            ("base", build_base(&c, false).program),
            ("ca", build_ca(&c, false).program),
            ("pa2", build_pa2(&c, false).program),
            ("dtd", build_base_dtd(&c)),
        ];
        for (name, program) in schemes {
            let a = analyze_program(&program, &AnalyzeConfig::new());
            assert!(a.is_clean(), "{name} at {label}: {}", a.report());
        }
    }
}

/// The static per-edge accounting predicts the dynamic counters exactly:
/// task count, cross-node messages, cross-node bytes, redundant flops.
#[test]
fn static_comm_matches_dynamic_counters_exactly() {
    // tile 8 keeps steps = 3 within PA2's `steps <= tile / 2` precondition
    let c = cfg(32, 8, 3, 2, 6);
    let schemes: Vec<(&str, Program)> = vec![
        ("base", build_base(&c, false).program),
        ("ca", build_ca(&c, false).program),
        ("pa2", build_pa2(&c, false).program),
        ("dtd", build_base_dtd(&c)),
    ];
    for (name, program) in schemes {
        let a = analyze_program(&program, &AnalyzeConfig::new());
        assert!(a.is_clean(), "{name}: {}", a.report());
        let r = run(&program, &RunConfig::simulated(MachineProfile::nacl(), 4));
        let mismatches = r.metrics.verify(&a.expected_counters());
        assert!(mismatches.is_empty(), "{name}: {mismatches:?}");
        // the same facts through the report's accessors, for redundancy
        assert_eq!(r.remote_messages(), a.comm.cross_messages, "{name}");
        assert_eq!(r.remote_bytes(), a.comm.cross_bytes, "{name}");
        assert_eq!(
            r.counter(names::REDUNDANT_FLOPS),
            a.flops.redundant,
            "{name}"
        );
    }
}

/// No schedule can beat the critical-path / busiest-node lower bound,
/// so in particular the simulator's makespan must not.
#[test]
fn simulated_makespan_never_beats_lower_bound() {
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    for steps in [1usize, 2, 4] {
        let c = cfg(32, 8, steps, 2, 8);
        let schemes: Vec<(&str, Program)> = vec![
            ("base", build_base(&c, false).program),
            ("ca", build_ca(&c, false).program),
            ("pa2", build_pa2(&c, false).program),
        ];
        for (name, program) in schemes {
            let a = analyze_program(&program, &AnalyzeConfig::new().with_lanes(lanes));
            let path = a.path.expect("clean DAG has a critical path");
            let r = run(&program, &RunConfig::simulated(profile.clone(), 4));
            assert!(
                r.makespan >= path.makespan_lower_bound,
                "{name} s={steps}: makespan {} < bound {}",
                r.makespan,
                path.makespan_lower_bound,
            );
            assert!(path.makespan_lower_bound >= path.critical_path / lanes as f64);
        }
    }
}

// ---------------------------------------------------------------------
// Region-dataflow: halo coverage, dead transfers, steady state
// ---------------------------------------------------------------------

fn all_schemes(c: &StencilConfig) -> Vec<(&'static str, Program)> {
    vec![
        ("base", build_base(c, false).program),
        ("ca", build_ca(c, false).program),
        ("pa2", build_pa2(c, false).program),
        ("dtd", build_base_dtd(c)),
    ]
}

/// The halo-coverage proof passes for every scheme across geometries:
/// every declared read is accounted for by writes, deliveries, or the
/// Dirichlet frame — and the pass actually checked something.
#[test]
fn dataflow_coverage_proof_passes_all_schemes() {
    let points = [(32, 4, 2, 2u32, 5u32), (48, 8, 4, 2, 9), (36, 6, 3, 3, 4)];
    for (n, tile, steps, side, iters) in points {
        let c = cfg(n, tile, steps, side, iters);
        for (name, program) in all_schemes(&c) {
            let a = analyze_program(
                &program,
                &AnalyzeConfig::new().with_dataflow(DataflowMode::Full),
            );
            assert!(a.is_clean(), "{name} n={n} s={steps}: {}", a.report());
            let d = a.dataflow.expect("dataflow pass ran");
            assert_eq!(d.uncovered, 0, "{name}");
            assert!(
                d.checked_reads > 0,
                "{name}: the proof must check actual reads"
            );
        }
    }
}

/// Mutation check: shrinking one CA halo declaration (the deep South
/// strips lose their deepest row) must break the coverage proof with a
/// concrete uncovered-rectangle witness — in both full-unfold and
/// steady-state mode.
#[test]
fn shrunk_ca_halo_is_caught_with_a_witness() {
    let c = cfg(48, 8, 4, 2, 9);
    let program = build_ca_shrunk(&c).program;
    for mode in [DataflowMode::Full, DataflowMode::SteadyState] {
        let a = analyze_program(&program, &AnalyzeConfig::new().with_dataflow(mode));
        assert!(!a.is_clean(), "{mode:?}: the mutation must be caught");
        let witness = a
            .diagnostics
            .iter()
            .find_map(|d| match d {
                Diagnostic::UncoveredRead { witness, cells, .. } => Some((*witness, *cells)),
                _ => None,
            })
            .expect("an uncovered-read diagnostic with a witness");
        // the missing payload is exactly the consumer's deepest
        // north-ghost row: 1 row spanning the tile
        assert_eq!(witness.0.rows, 1, "{mode:?}: witness {witness:?}");
        assert_eq!(witness.0.cols as usize, c.tile, "{mode:?}");
        assert_eq!(witness.1, c.tile as u64, "{mode:?}");
    }
    // the unmutated build stays clean under the same analysis
    let a = analyze_program(
        &build_ca(&c, false).program,
        &AnalyzeConfig::new().with_dataflow(DataflowMode::Full),
    );
    assert!(a.is_clean(), "{}", a.report());
}

/// Steady-state verification reproduces the full-unfold verdict and
/// dead-transfer totals while analyzing only prologue + one period of
/// task instances.
#[test]
fn steady_state_matches_full_unfold() {
    let c = cfg(48, 8, 4, 2, 11);
    let tiles = c.geometry().num_tiles();
    for (name, program) in all_schemes(&c) {
        let full = analyze_program(
            &program,
            &AnalyzeConfig::new().with_dataflow(DataflowMode::Full),
        );
        let ss = analyze_program(
            &program,
            &AnalyzeConfig::new().with_dataflow(DataflowMode::SteadyState),
        );
        assert_eq!(full.is_clean(), ss.is_clean(), "{name}");
        let (df, ds) = (full.dataflow.unwrap(), ss.dataflow.unwrap());
        assert_eq!(df.dead_bytes, ds.dead_bytes, "{name}");
        assert_eq!(df.dead_cross_bytes, ds.dead_cross_bytes, "{name}");
        assert_eq!(df.uncovered, ds.uncovered, "{name}");
        let period = ds.period.unwrap_or_else(|| panic!("{name}: no period"));
        // base/dtd repeat every iteration; CA and PA2 every s iterations
        let expected_period = if name == "base" || name == "dtd" {
            1
        } else {
            c.steps
        };
        assert_eq!(period, expected_period, "{name}");
        // the whole point: prologue + one period instead of the full DAG
        assert_eq!(ds.analyzed_tasks, (ds.prologue + period) * tiles, "{name}");
        assert!(
            ds.analyzed_tasks < df.analyzed_tasks,
            "{name}: {} !< {}",
            ds.analyzed_tasks,
            df.analyzed_tasks
        );
    }
}

/// CA's dead wire traffic, cross-checked three ways: the analyzer's
/// dead-byte total equals the closed-form geometric count (one far cell
/// of 8 bytes per corner block — the cell outside the 5-point cross of
/// any update region), the static counters match the simulator's dynamic
/// `obs` counters exactly, and the redundant-flop total matches the
/// closed-form predictor.
#[test]
fn ca_dead_transfers_match_geometry_and_dynamic_counters() {
    let c = cfg(32, 8, 3, 2, 7); // s >= 2: exactly one dead far cell/block
    let geo = c.geometry();
    let program = build_ca(&c, false).program;
    let a = analyze_program(
        &program,
        &AnalyzeConfig::new().with_dataflow(DataflowMode::Full),
    );
    assert!(a.is_clean(), "{}", a.report());
    let d = a.dataflow.as_ref().unwrap();

    // geometric expectation: every corner block delivered to a boundary
    // consumer carries exactly one cell no 5-point read ever touches
    let rounds = (0..c.iterations)
        .filter(|t| t % c.steps as u32 == 0)
        .count() as u64;
    let mut corner_deliveries = 0u64;
    let mut cross_deliveries = 0u64;
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            for corner in Corner::ALL {
                if let Some((dx, dy)) = geo.diagonal(tx, ty, corner) {
                    if geo.is_node_boundary(dx, dy) {
                        corner_deliveries += 1;
                        if geo.node_of_tile(tx, ty) != geo.node_of_tile(dx, dy) {
                            cross_deliveries += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(d.dead_bytes, corner_deliveries * rounds * 8);
    assert_eq!(d.dead_cross_bytes, cross_deliveries * rounds * 8);
    assert_eq!(d.dead_edges as u64, corner_deliveries * rounds);

    // dynamic cross-check: the statically predicted counters are exact,
    // and the dead bytes are a strict subset of real wire traffic
    let r = run(&program, &RunConfig::simulated(MachineProfile::nacl(), 4));
    let mismatches = r.metrics.verify(&a.expected_counters());
    assert!(mismatches.is_empty(), "{mismatches:?}");
    assert!(d.dead_cross_bytes > 0 && d.dead_cross_bytes < r.remote_bytes());
    assert_eq!(
        a.flops.redundant,
        predict_ca_redundant_flops(&geo, c.iterations, c.steps, c.ratio)
    );
}

// ---------------------------------------------------------------------
// Rect-set algebra round-trips
// ---------------------------------------------------------------------

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-8i64..24, -8i64..24, 1u32..12, 1u32..12).prop_map(|(r, c, h, w)| Rect::new(r, c, h, w))
}

fn intersection_area(a: Rect, b: Rect) -> u64 {
    let rows = (a.row + a.rows as i64).min(b.row + b.rows as i64) - a.row.max(b.row);
    let cols = (a.col + a.cols as i64).min(b.col + b.cols as i64) - a.col.max(b.col);
    if rows <= 0 || cols <= 0 {
        0
    } else {
        rows as u64 * cols as u64
    }
}

proptest! {
    /// Subtract-then-union identity: (a \ b) ∪ b covers a and equals
    /// {a, b} as a cell set; areas obey |a \ b| = |a| − |a ∩ b|.
    #[test]
    fn rectset_subtract_union_roundtrip(a in arb_rect(), b in arb_rect()) {
        let mut diff = RectSet::from_rect(a);
        diff.subtract_rect(&b);
        prop_assert_eq!(diff.area(), a.area() - intersection_area(a, b));
        // no fragment of the difference may touch b
        for &r in diff.rects() {
            prop_assert!(!r.intersects(&b));
        }
        let mut rejoined = diff.clone();
        rejoined.insert(b);
        prop_assert!(rejoined.covers(&a));
        prop_assert!(rejoined.same_cells(&RectSet::from_rects([a, b])));
    }

    /// Coverage monotonicity: inserting rects never shrinks the covered
    /// set, and every inserted rect is covered afterwards.
    #[test]
    fn rectset_coverage_is_monotone(rects in proptest::collection::vec(arb_rect(), 1..8)) {
        let mut set = RectSet::new();
        let mut prev_area = 0;
        for (i, &r) in rects.iter().enumerate() {
            let before = set.clone();
            set.insert(r);
            prop_assert!(set.area() >= prev_area, "area shrank at step {i}");
            prop_assert!(before.difference(&set).is_empty(), "lost cells at step {i}");
            prop_assert!(set.covers(&r));
            prev_area = set.area();
        }
        // the union is fragmentation-insensitive: rebuilding in reverse
        // order yields the same cell set
        let mut reversed = RectSet::new();
        for &r in rects.iter().rev() {
            reversed.insert(r);
        }
        prop_assert!(set.same_cells(&reversed));
    }
}
