//! The static analyzer vs the whole stack: every scheme's program must be
//! analysis-clean across geometries, the static communication accounting
//! must match the simulator's dynamic counters *exactly*, and no simulated
//! run may beat the analyzer's makespan lower bound.

use analyze::{analyze_program, AnalyzeConfig};
use ca_stencil::{build_base, build_base_dtd, build_ca, build_pa2, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use obs::names;
use runtime::{run, Program, RunConfig};

fn cfg(n: usize, tile: usize, steps: usize, side: u32, iters: u32) -> StencilConfig {
    StencilConfig::new(
        Problem::laplace(n),
        tile,
        iters,
        ProcessGrid::new(side, side),
    )
    .with_steps(steps)
}

/// Several (grid, tile, s) points per scheme; each must produce zero
/// diagnostics.
#[test]
fn all_schemes_are_analysis_clean() {
    let points = [
        (16, 4, 1, 1u32, 3u32),
        (32, 4, 2, 2, 5),
        (48, 8, 4, 2, 7),
        (36, 6, 3, 3, 4),
    ];
    for (n, tile, steps, side, iters) in points {
        let c = cfg(n, tile, steps, side, iters);
        let label = format!("n={n} tile={tile} s={steps} side={side}");
        let schemes: Vec<(&str, Program)> = vec![
            ("base", build_base(&c, false).program),
            ("ca", build_ca(&c, false).program),
            ("pa2", build_pa2(&c, false).program),
            ("dtd", build_base_dtd(&c)),
        ];
        for (name, program) in schemes {
            let a = analyze_program(&program, &AnalyzeConfig::new());
            assert!(a.is_clean(), "{name} at {label}: {}", a.report());
        }
    }
}

/// The static per-edge accounting predicts the dynamic counters exactly:
/// task count, cross-node messages, cross-node bytes, redundant flops.
#[test]
fn static_comm_matches_dynamic_counters_exactly() {
    // tile 8 keeps steps = 3 within PA2's `steps <= tile / 2` precondition
    let c = cfg(32, 8, 3, 2, 6);
    let schemes: Vec<(&str, Program)> = vec![
        ("base", build_base(&c, false).program),
        ("ca", build_ca(&c, false).program),
        ("pa2", build_pa2(&c, false).program),
        ("dtd", build_base_dtd(&c)),
    ];
    for (name, program) in schemes {
        let a = analyze_program(&program, &AnalyzeConfig::new());
        assert!(a.is_clean(), "{name}: {}", a.report());
        let r = run(&program, &RunConfig::simulated(MachineProfile::nacl(), 4));
        let mismatches = r.metrics.verify(&a.expected_counters());
        assert!(mismatches.is_empty(), "{name}: {mismatches:?}");
        // the same facts through the report's accessors, for redundancy
        assert_eq!(r.remote_messages(), a.comm.cross_messages, "{name}");
        assert_eq!(r.remote_bytes(), a.comm.cross_bytes, "{name}");
        assert_eq!(
            r.counter(names::REDUNDANT_FLOPS),
            a.flops.redundant,
            "{name}"
        );
    }
}

/// No schedule can beat the critical-path / busiest-node lower bound,
/// so in particular the simulator's makespan must not.
#[test]
fn simulated_makespan_never_beats_lower_bound() {
    let profile = MachineProfile::nacl();
    let lanes = profile.compute_threads();
    for steps in [1usize, 2, 4] {
        let c = cfg(32, 8, steps, 2, 8);
        let schemes: Vec<(&str, Program)> = vec![
            ("base", build_base(&c, false).program),
            ("ca", build_ca(&c, false).program),
            ("pa2", build_pa2(&c, false).program),
        ];
        for (name, program) in schemes {
            let a = analyze_program(&program, &AnalyzeConfig::new().with_lanes(lanes));
            let path = a.path.expect("clean DAG has a critical path");
            let r = run(&program, &RunConfig::simulated(profile.clone(), 4));
            assert!(
                r.makespan >= path.makespan_lower_bound,
                "{name} s={steps}: makespan {} < bound {}",
                r.makespan,
                path.makespan_lower_bound,
            );
            assert!(path.makespan_lower_bound >= path.critical_path / lanes as f64);
        }
    }
}
